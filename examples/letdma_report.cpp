// letdma_report: render the machine-readable benchmark/observability
// streams into one self-contained HTML page.
//
//   letdma_report [options] metrics.jsonl [more.jsonl ...]
//
// Inputs are JSONL files as produced by the bench harnesses
// (LETDMA_METRICS / bench::append_metrics) and by obs::JsonlMetricsSink /
// the flight recorder — one JSON object per line. A file whose whole
// content is a single JSON document (e.g. google-benchmark --benchmark_out)
// is skipped with a note instead of reported as malformed.
//
// Options:
//   --out <file>          HTML destination (default letdma_report.html)
//   --baselines <path>    a committed baseline JSON, or a directory whose
//                         *.json files are baselines; repeatable. Each
//                         baseline is matched by (bench, config) against
//                         the measured rows and gated at 0.8x its value.
//   --check               strict mode: exit non-zero on any malformed
//                         JSONL line or any baseline below its floor
//   --require-histograms  with --check, also fail when the inputs carry
//                         no histogram rows (CI smoke uses this to prove
//                         the solve-latency percentiles made it out)
//   --title <string>      report heading
//
// The page is dependency-free: inline SVG plots (incumbent convergence,
// sampler gauge timelines), histogram percentile tables, baseline deltas,
// and a flight-recorder replay, with light/dark styling via CSS custom
// properties and prefers-color-scheme.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "letdma/support/json.hpp"

namespace {

// The JSON machinery (JsonValue + recursive-descent parser) lives in
// letdma::support so the serve layer parses request envelopes with the
// same single implementation.
using letdma::support::JsonValue;
using letdma::support::parse_json;

// --- Loaded data -----------------------------------------------------------

struct Row {
  std::string file;
  int line = 0;
  JsonValue value;
};

struct Baseline {
  std::string path;
  std::string bench, config, note;
  std::string key;  // the gate field: the numeric key besides bench/config
  double value = 0.0;
};

struct Report {
  std::vector<Row> bench_rows;    // {"bench":...,"config":...}
  std::vector<Row> event_rows;    // {"type":...} from obs sinks
  std::vector<Row> flight_rows;   // {"type":"flight",...}
  std::vector<Baseline> baselines;
  std::vector<std::string> files;
  std::vector<std::string> skipped;  // whole-file JSON documents
  std::vector<std::string> errors;
  int total_lines = 0;
};

void load_jsonl(const std::string& path, Report* report) {
  std::ifstream in(path);
  if (!in) {
    report->errors.push_back("cannot open " + path);
    return;
  }
  report->files.push_back(path);
  std::string line;
  int lineno = 0;
  std::vector<Row> pending;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    Row row;
    row.file = path;
    row.line = lineno;
    std::string error;
    if (!parse_json(line, &row.value, &error)) {
      // Not line-delimited: a pretty-printed single document (e.g.
      // google-benchmark output) is noted and skipped, anything else is a
      // genuine malformed line.
      std::stringstream whole;
      whole << line << "\n" << in.rdbuf();
      JsonValue doc;
      std::string doc_error;
      if (lineno == 1 && parse_json(whole.str(), &doc, &doc_error)) {
        report->skipped.push_back(path + " (single JSON document)");
        return;
      }
      report->errors.push_back(path + ":" + std::to_string(lineno) + ": " +
                               error);
      continue;
    }
    pending.push_back(std::move(row));
  }
  for (Row& row : pending) {
    ++report->total_lines;
    if (row.value.has("bench")) {
      report->bench_rows.push_back(std::move(row));
    } else if (row.value.str_or("type", "") == "flight") {
      report->flight_rows.push_back(std::move(row));
    } else if (row.value.has("type")) {
      report->event_rows.push_back(std::move(row));
    } else {
      report->errors.push_back(row.file + ":" + std::to_string(row.line) +
                               ": row has neither \"bench\" nor \"type\"");
    }
  }
}

void load_baseline_file(const std::string& path, Report* report) {
  std::ifstream in(path);
  if (!in) {
    report->errors.push_back("cannot open baseline " + path);
    return;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  JsonValue doc;
  std::string error;
  if (!parse_json(buf.str(), &doc, &error) ||
      doc.kind != JsonValue::Kind::kObject) {
    report->errors.push_back("baseline " + path + ": " + error);
    return;
  }
  Baseline b;
  b.path = path;
  b.bench = doc.str_or("bench", "");
  b.config = doc.str_or("config", "");
  b.note = doc.str_or("note", "");
  for (const auto& [key, v] : *doc.object) {
    if (v.kind == JsonValue::Kind::kNumber && key != "bench" &&
        key != "config" && key != "note") {
      b.key = key;
      b.value = v.number;
      break;
    }
  }
  if (b.bench.empty() || b.key.empty()) {
    report->errors.push_back("baseline " + path +
                             ": needs \"bench\" and one numeric gate field");
    return;
  }
  report->baselines.push_back(std::move(b));
}

void load_baselines(const std::string& path, Report* report) {
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    std::vector<std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(path, ec)) {
      if (entry.path().extension() == ".json") {
        files.push_back(entry.path().string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& f : files) load_baseline_file(f, report);
  } else {
    load_baseline_file(path, report);
  }
}

// --- HTML / SVG rendering --------------------------------------------------

std::string html_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  if (v != 0.0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.3g", v);
  } else if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.4g", v);
  }
  return buf;
}

std::string fmt_coord(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", v);
  return buf;
}

std::string render_value(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return fmt_num(v.number);
    case JsonValue::Kind::kString: return v.text;
    case JsonValue::Kind::kArray: return "[...]";
    case JsonValue::Kind::kObject: return "{...}";
  }
  return "?";
}

/// One single-series inline-SVG line plot: x/y axes, four y gridlines,
/// a 2px step or linear path, hoverable point markers with native
/// tooltips, and a direct label on the final value. Identity lives in the
/// caption, so no legend is needed.
std::string svg_plot(const std::vector<std::pair<double, double>>& pts,
                     const std::string& x_label, const std::string& y_label,
                     bool step) {
  if (pts.empty()) return "";
  constexpr double kW = 640, kH = 220;
  constexpr double kL = 64, kR = 24, kT = 14, kB = 34;
  double x0 = pts.front().first, x1 = pts.front().first;
  double y0 = pts.front().second, y1 = pts.front().second;
  for (const auto& [x, y] : pts) {
    x0 = std::min(x0, x); x1 = std::max(x1, x);
    y0 = std::min(y0, y); y1 = std::max(y1, y);
  }
  if (x1 - x0 < 1e-12) { x0 -= 0.5; x1 += 0.5; }
  if (y1 - y0 < 1e-12) { y0 -= (std::fabs(y0) + 1.0) * 0.05;
                         y1 += (std::fabs(y1) + 1.0) * 0.05; }
  const auto px = [&](double x) {
    return kL + (x - x0) / (x1 - x0) * (kW - kL - kR);
  };
  const auto py = [&](double y) {
    return kH - kB - (y - y0) / (y1 - y0) * (kH - kT - kB);
  };
  std::string svg =
      "<svg viewBox=\"0 0 640 220\" role=\"img\" class=\"plot\">\n";
  // Gridlines + y tick labels.
  for (int i = 0; i <= 3; ++i) {
    const double y = y0 + (y1 - y0) * i / 3.0;
    const std::string yy = fmt_coord(py(y));
    svg += "<line class=\"grid\" x1=\"" + fmt_coord(kL) + "\" y1=\"" + yy +
           "\" x2=\"" + fmt_coord(kW - kR) + "\" y2=\"" + yy + "\"/>\n";
    svg += "<text class=\"tick\" x=\"" + fmt_coord(kL - 6) + "\" y=\"" + yy +
           "\" text-anchor=\"end\" dominant-baseline=\"middle\">" +
           html_escape(fmt_num(y)) + "</text>\n";
  }
  // X tick labels at the range ends.
  svg += "<text class=\"tick\" x=\"" + fmt_coord(kL) + "\" y=\"" +
         fmt_coord(kH - kB + 16) + "\">" + html_escape(fmt_num(x0)) +
         "</text>\n";
  svg += "<text class=\"tick\" x=\"" + fmt_coord(kW - kR) + "\" y=\"" +
         fmt_coord(kH - kB + 16) + "\" text-anchor=\"end\">" +
         html_escape(fmt_num(x1)) + "</text>\n";
  svg += "<text class=\"tick\" x=\"" + fmt_coord((kL + kW - kR) / 2) +
         "\" y=\"" + fmt_coord(kH - 6) + "\" text-anchor=\"middle\">" +
         html_escape(x_label) + "</text>\n";
  svg += "<text class=\"tick\" transform=\"translate(14 " +
         fmt_coord((kT + kH - kB) / 2) + ") rotate(-90)\" "
         "text-anchor=\"middle\">" + html_escape(y_label) + "</text>\n";
  // The series path.
  std::string d = "M" + fmt_coord(px(pts[0].first)) + " " +
                  fmt_coord(py(pts[0].second));
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (step) d += " H" + fmt_coord(px(pts[i].first));
    else d += " L" + fmt_coord(px(pts[i].first)) + " " +
              fmt_coord(py(pts[i].second));
    if (step) d += " V" + fmt_coord(py(pts[i].second));
  }
  svg += "<path class=\"series\" d=\"" + d + "\"/>\n";
  // Hover markers: native <title> tooltips, targets larger than the dot.
  for (const auto& [x, y] : pts) {
    svg += "<circle class=\"pt\" cx=\"" + fmt_coord(px(x)) + "\" cy=\"" +
           fmt_coord(py(y)) + "\" r=\"8\"><title>" +
           html_escape(x_label + " " + fmt_num(x) + ", " + y_label + " " +
                       fmt_num(y)) + "</title></circle>\n";
  }
  // Direct label on the last value.
  svg += "<text class=\"label\" x=\"" +
         fmt_coord(std::min(px(pts.back().first) + 6, kW - kR)) + "\" y=\"" +
         fmt_coord(py(pts.back().second) - 8) + "\">" +
         html_escape(fmt_num(pts.back().second)) + "</text>\n";
  svg += "</svg>\n";
  return svg;
}

std::string data_table(const std::vector<std::pair<double, double>>& pts,
                       const std::string& x_label,
                       const std::string& y_label) {
  std::string out = "<details><summary>data</summary><table><tr><th>" +
                    html_escape(x_label) + "</th><th>" +
                    html_escape(y_label) + "</th></tr>";
  for (const auto& [x, y] : pts) {
    out += "<tr><td>" + html_escape(fmt_num(x)) + "</td><td>" +
           html_escape(fmt_num(y)) + "</td></tr>";
  }
  out += "</table></details>\n";
  return out;
}

const char* kStyle = R"css(
:root {
  --surface: #fcfcfb; --panel: #f4f3f0; --grid: #e0dfdb;
  --ink: #0b0b0b; --ink2: #52514e;
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a;
  /* verdict text needs text-grade contrast on the light surface, so the
     light step is darker than the series aqua */
  --bad: #c23b22; --good: #177f55;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    --surface: #1a1a19; --panel: #232321; --grid: #3a3936;
    --ink: #ffffff; --ink2: #c3c2b7;
    --s1: #3987e5; --s2: #d95926; --s3: #199e70;
    --bad: #e06650; --good: #199e70;
  }
}
body { background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
  max-width: 960px; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
h3 { font-size: 0.95rem; color: var(--ink2); font-weight: 600; }
table { border-collapse: collapse; margin: 0.5rem 0; }
th, td { border: 1px solid var(--grid); padding: 0.25rem 0.6rem;
  text-align: right; }
th { background: var(--panel); color: var(--ink2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
.plot { background: var(--panel); border: 1px solid var(--grid);
  border-radius: 6px; max-width: 100%; height: auto; }
.plot .grid { stroke: var(--grid); stroke-width: 1; }
.plot .series { stroke: var(--s1); stroke-width: 2; fill: none;
  stroke-linejoin: round; }
.plot .pt { fill: var(--s1); opacity: 0; }
.plot .pt:hover { opacity: 1; }
.plot .tick, .plot .label { fill: var(--ink2); font-size: 11px; }
.plot .label { fill: var(--ink); font-weight: 600; }
.hero { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
.stat { background: var(--panel); border: 1px solid var(--grid);
  border-radius: 6px; padding: 0.6rem 1rem; }
.stat b { display: block; font-size: 1.3rem; }
.stat span { color: var(--ink2); font-size: 0.85rem; }
.ok { color: var(--good); font-weight: 600; }
.fail { color: var(--bad); font-weight: 600; }
.muted { color: var(--ink2); }
details summary { cursor: pointer; color: var(--ink2);
  font-size: 0.85rem; }
.level-warn td:first-child::before { content: "\26A0 "; }
.level-error td:first-child::before { content: "\2716 "; }
code { background: var(--panel); padding: 0 0.25rem; border-radius: 3px; }
)css";

struct BaselineVerdict {
  Baseline baseline;
  bool measured_found = false;
  double measured = 0.0;
  bool ok = true;
};

std::vector<BaselineVerdict> judge_baselines(const Report& report) {
  std::vector<BaselineVerdict> out;
  for (const Baseline& b : report.baselines) {
    BaselineVerdict v;
    v.baseline = b;
    // Latest matching measured row wins (the nightly appends re-runs).
    for (const Row& row : report.bench_rows) {
      if (row.value.str_or("bench", "") != b.bench) continue;
      if (!b.config.empty() && row.value.str_or("config", "") != b.config) {
        continue;
      }
      double measured = 0.0;
      if (!row.value.num_of(b.key, &measured)) continue;
      v.measured_found = true;
      v.measured = measured;
    }
    v.ok = !v.measured_found || v.measured >= 0.8 * b.value;
    out.push_back(std::move(v));
  }
  return out;
}

std::string render_html(const Report& report, const std::string& title) {
  std::string html = "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
                     "<meta charset=\"utf-8\">\n"
                     "<meta name=\"viewport\" "
                     "content=\"width=device-width, initial-scale=1\">\n"
                     "<title>" + html_escape(title) + "</title>\n<style>" +
                     kStyle + "</style>\n</head>\n<body>\n";
  html += "<h1>" + html_escape(title) + "</h1>\n";

  // Overview stat tiles.
  const auto stat = [&](const std::string& n, const std::string& label) {
    html += "<div class=\"stat\"><b>" + n + "</b><span>" +
            html_escape(label) + "</span></div>\n";
  };
  html += "<div class=\"hero\">\n";
  stat(std::to_string(report.files.size()), "input files");
  stat(std::to_string(report.bench_rows.size()), "bench rows");
  stat(std::to_string(report.event_rows.size()), "event rows");
  stat(std::to_string(report.flight_rows.size()), "flight events");
  html += "</div>\n";
  html += "<p class=\"muted\">sources:";
  for (const std::string& f : report.files) {
    html += " <code>" + html_escape(f) + "</code>";
  }
  for (const std::string& s : report.skipped) {
    html += " <code>" + html_escape(s) + " [skipped]</code>";
  }
  html += "</p>\n";

  if (!report.errors.empty()) {
    html += "<h2>Malformed input</h2>\n<ul>\n";
    for (const std::string& e : report.errors) {
      html += "<li class=\"fail\">" + html_escape(e) + "</li>\n";
    }
    html += "</ul>\n";
  }

  // Baseline comparison.
  if (!report.baselines.empty()) {
    html += "<h2>Baseline comparison</h2>\n"
            "<table><tr><th>bench / config</th><th>gate</th>"
            "<th>baseline</th><th>measured</th><th>delta</th>"
            "<th>verdict</th></tr>\n";
    for (const BaselineVerdict& v : judge_baselines(report)) {
      const Baseline& b = v.baseline;
      html += "<tr><td>" + html_escape(b.bench + " / " + b.config) +
              "</td><td>" + html_escape(b.key) + "</td><td>" +
              fmt_num(b.value) + "</td>";
      if (v.measured_found) {
        const double delta = (v.measured / b.value - 1.0) * 100.0;
        char dbuf[32];
        std::snprintf(dbuf, sizeof dbuf, "%+.1f%%", delta);
        html += "<td>" + fmt_num(v.measured) + "</td><td>" + dbuf +
                "</td><td class=\"" + (v.ok ? "ok\">ok" : "fail\">REGRESSION") +
                "</td></tr>\n";
      } else {
        html += "<td class=\"muted\" colspan=\"2\">not measured in these "
                "inputs</td><td class=\"muted\">-</td></tr>\n";
      }
    }
    html += "</table>\n";
  }

  // Convergence plots from incumbent timelines.
  std::string conv;
  for (const Row& row : report.bench_rows) {
    const JsonValue* tl = row.value.find("incumbent_timeline");
    if (tl == nullptr || tl->kind != JsonValue::Kind::kString) continue;
    JsonValue arr;
    std::string error;
    if (!parse_json(tl->text, &arr, &error) ||
        arr.kind != JsonValue::Kind::kArray) {
      continue;
    }
    std::vector<std::pair<double, double>> pts;
    for (const JsonValue& p : *arr.array) {
      if (p.kind != JsonValue::Kind::kArray || p.array->size() != 2) continue;
      pts.emplace_back((*p.array)[0].number, (*p.array)[1].number);
    }
    if (pts.empty()) continue;
    const std::string name = row.value.str_or("bench", "?") + " / " +
                             row.value.str_or("config", "?");
    double gap = 0.0;
    const bool has_gap = row.value.num_of("final_gap", &gap);
    conv += "<h3>" + html_escape(name) +
            (has_gap ? " <span class=\"muted\">(final gap " +
                           html_escape(fmt_num(gap)) + ")</span>"
                     : "") +
            "</h3>\n";
    conv += svg_plot(pts, "t_sec", "objective", /*step=*/true);
    conv += data_table(pts, "t_sec", "objective");
  }
  if (!conv.empty()) {
    html += "<h2>Incumbent convergence</h2>\n" + conv;
  }

  // Histogram percentile tables, one per bench.
  std::map<std::string, std::string> hist_tables;
  for (const Row& row : report.bench_rows) {
    if (row.value.str_or("config", "") != "histogram") continue;
    const std::string bench = row.value.str_or("bench", "?");
    std::string& table = hist_tables[bench];
    if (table.empty()) {
      table = "<h3>" + html_escape(bench) +
              "</h3>\n<table><tr><th>histogram</th><th>count</th>"
              "<th>mean</th><th>p50</th><th>p90</th><th>p99</th>"
              "<th>max</th></tr>\n";
    }
    table += "<tr><td>" + html_escape(row.value.str_or("hist", "?")) + "</td>";
    for (const char* key : {"count", "mean", "p50", "p90", "p99", "max"}) {
      double v = 0.0;
      table += row.value.num_of(key, &v)
                   ? "<td>" + fmt_num(v) + "</td>"
                   : "<td class=\"muted\">-</td>";
    }
    table += "</tr>\n";
  }
  if (!hist_tables.empty()) {
    html += "<h2>Latency histograms</h2>\n"
            "<p class=\"muted\">units are in the histogram name: "
            "<code>_ms</code> milliseconds, <code>_us</code> "
            "microseconds.</p>\n";
    for (auto& [bench, table] : hist_tables) {
      html += table + "</table>\n";
    }
  }

  // Sampler gauge timelines (counter events with a "value" arg).
  std::map<std::string, std::vector<std::pair<double, double>>> gauges;
  for (const Row& row : report.event_rows) {
    if (row.value.str_or("type", "") != "counter") continue;
    const JsonValue* args = row.value.find("args");
    if (args == nullptr || args->kind != JsonValue::Kind::kObject) continue;
    double ts = 0.0, value = 0.0;
    if (!row.value.num_of("ts_us", &ts) || !args->num_of("value", &value)) {
      continue;
    }
    gauges[row.value.str_or("name", "?")].emplace_back(ts, value);
  }
  std::string gauge_html;
  for (auto& [name, pts] : gauges) {
    if (pts.size() < 2) continue;
    std::sort(pts.begin(), pts.end());
    const double t0 = pts.front().first;
    std::vector<std::pair<double, double>> rel;
    rel.reserve(pts.size());
    for (const auto& [ts, v] : pts) rel.emplace_back((ts - t0) * 1e-6, v);
    gauge_html += "<h3>" + html_escape(name) + "</h3>\n";
    gauge_html += svg_plot(rel, "t_sec", name, /*step=*/false);
    gauge_html += data_table(rel, "t_sec", "value");
  }
  if (!gauge_html.empty()) {
    html += "<h2>Solver gauge timelines</h2>\n" + gauge_html;
  }

  // Flight-recorder replay, ordered by sequence number.
  if (!report.flight_rows.empty()) {
    std::vector<const Row*> flights;
    for (const Row& row : report.flight_rows) flights.push_back(&row);
    std::sort(flights.begin(), flights.end(),
              [](const Row* a, const Row* b) {
                double sa = 0.0, sb = 0.0;
                a->value.num_of("seq", &sa);
                b->value.num_of("seq", &sb);
                return sa < sb;
              });
    html += "<h2>Flight recorder</h2>\n"
            "<table><tr><th>seq</th><th>t (s)</th><th>level</th>"
            "<th>event</th><th>category</th><th>detail</th></tr>\n";
    for (const Row* row : flights) {
      double seq = 0.0, ts = 0.0;
      row->value.num_of("seq", &seq);
      row->value.num_of("ts_us", &ts);
      // The sinks emit single-letter level tags (D/I/W/E).
      std::string level = row->value.str_or("level", "info");
      if (level == "D") level = "debug";
      else if (level == "I") level = "info";
      else if (level == "W") level = "warn";
      else if (level == "E") level = "error";
      std::string detail;
      const JsonValue* args = row->value.find("args");
      if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
        for (const auto& [k, v] : *args->object) {
          if (!detail.empty()) detail += ", ";
          detail += k + "=" + render_value(v);
        }
      }
      const char* row_class = level == "warn" ? " class=\"level-warn\""
                              : level == "error" ? " class=\"level-error\""
                                                 : "";
      html += std::string("<tr") + row_class + "><td>" + fmt_num(seq) +
              "</td><td>" + fmt_num(ts * 1e-6) + "</td><td>" +
              html_escape(level) + "</td><td>" +
              html_escape(row->value.str_or("name", "?")) + "</td><td>" +
              html_escape(row->value.str_or("cat", "")) + "</td><td>" +
              html_escape(detail) + "</td></tr>\n";
    }
    html += "</table>\n";
  }

  html += "</body>\n</html>\n";
  return html;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: letdma_report [--out report.html] [--baselines path]...\n"
      "                     [--check] [--require-histograms]\n"
      "                     [--title string] metrics.jsonl...\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "letdma_report.html";
  std::string title = "letdma bench report";
  std::vector<std::string> baseline_paths, inputs;
  bool check = false, require_histograms = false;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    auto value = [&](std::string* dst) {
      if (a + 1 >= argc) return false;
      *dst = argv[++a];
      return true;
    };
    if (arg == "--out") {
      if (!value(&out_path)) return usage();
    } else if (arg == "--baselines") {
      std::string p;
      if (!value(&p)) return usage();
      baseline_paths.push_back(p);
    } else if (arg == "--title") {
      if (!value(&title)) return usage();
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--require-histograms") {
      require_histograms = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty() && baseline_paths.empty()) return usage();

  Report report;
  for (const std::string& path : inputs) load_jsonl(path, &report);
  for (const std::string& path : baseline_paths) {
    load_baselines(path, &report);
  }

  int hist_rows = 0;
  for (const Row& row : report.bench_rows) {
    if (row.value.str_or("config", "") == "histogram") ++hist_rows;
  }

  const std::string html = render_html(report, title);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << html;
  std::printf("report: %zu bench rows, %zu event rows, %zu flight events, "
              "%d histogram rows, %zu baselines -> %s\n",
              report.bench_rows.size(), report.event_rows.size(),
              report.flight_rows.size(), hist_rows,
              report.baselines.size(), out_path.c_str());

  int rc = 0;
  for (const std::string& e : report.errors) {
    std::fprintf(stderr, "error: %s\n", e.c_str());
    if (check) rc = 1;
  }
  if (check) {
    for (const BaselineVerdict& v : judge_baselines(report)) {
      if (!v.measured_found) {
        std::fprintf(stderr, "note: baseline %s not measured in inputs\n",
                     v.baseline.path.c_str());
      } else if (!v.ok) {
        std::fprintf(stderr,
                     "error: %s %s measured %.1f below floor 0.8 x %.1f\n",
                     v.baseline.bench.c_str(), v.baseline.key.c_str(),
                     v.measured, v.baseline.value);
        rc = 1;
      }
    }
    if (require_histograms && hist_rows == 0) {
      std::fprintf(stderr, "error: no histogram rows in inputs "
                           "(--require-histograms)\n");
      rc = 1;
    }
  }
  return rc;
}
