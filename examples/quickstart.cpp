// Quickstart: two tasks on two cores sharing one label.
//
// Shows the minimal end-to-end flow of the library:
//   1. describe the platform and the application,
//   2. derive the LET communications,
//   3. build a protocol configuration (layout + DMA transfer schedule),
//   4. validate it and inspect the resulting latencies.
#include <cstdio>

#include "letdma/let/greedy.hpp"
#include "letdma/let/validate.hpp"

using namespace letdma;

int main() {
  // 1. A dual-core platform with the paper's DMA overheads and a periodic
  //    producer/consumer pair exchanging a 4 KiB label.
  model::Platform platform(2);
  model::Application app(platform);
  const model::TaskId producer =
      app.add_task("producer", support::ms(10), support::ms(2),
                   model::CoreId{0});
  const model::TaskId consumer =
      app.add_task("consumer", support::ms(20), support::ms(5),
                   model::CoreId{1});
  app.add_label("sensor_frame", 4096, producer, {consumer});
  app.finalize();

  // 2. LET communications over the hyperperiod.
  let::LetComms comms(app);
  std::printf("hyperperiod: %s\n",
              support::format_time(app.hyperperiod()).c_str());
  std::printf("communications at s0:\n");
  for (const let::Communication& c : comms.comms_at_s0()) {
    std::printf("  %s\n", let::to_string(app, c).c_str());
  }

  // 3. A greedy protocol configuration.
  const let::ScheduleResult result = let::GreedyScheduler(comms).build();
  std::printf("DMA transfers at s0: %zu\n", result.s0_transfers.size());
  for (const let::DmaTransfer& t : result.s0_transfers) {
    std::printf("  %s transfer, %lld bytes, local@%lld global@%lld\n",
                t.dir == let::Direction::kWrite ? "write" : "read ",
                static_cast<long long>(t.bytes),
                static_cast<long long>(t.local_addr),
                static_cast<long long>(t.global_addr));
  }

  // 4. Validation and latencies.
  const let::ValidationReport report =
      validate_schedule(comms, result.layout, result.schedule);
  std::printf("validation: %s\n", report.summary().c_str());
  const auto latencies = let::worst_case_latencies(
      comms, result.schedule, let::ReadinessSemantics::kProposed);
  for (int task = 0; task < static_cast<int>(latencies.size()); ++task) {
    std::printf(
        "lambda(%s) = %s\n", app.task(model::TaskId{task}).name.c_str(),
        support::format_time(latencies[static_cast<std::size_t>(task)])
            .c_str());
  }
  return report.ok() ? 0 : 1;
}
