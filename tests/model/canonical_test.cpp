#include "letdma/model/canonical.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "../test_fixtures.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::model {
namespace {

std::vector<int> random_permutation(int n, std::mt19937_64& rng) {
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  return perm;
}

std::unique_ptr<Application> random_relabeling(const Application& app,
                                               std::mt19937_64& rng) {
  return permute_application(app,
                             random_permutation(app.num_tasks(), rng),
                             random_permutation(app.num_labels(), rng),
                             random_permutation(app.platform().num_cores(),
                                                rng));
}

TEST(Canonical, FingerprintIsDeterministic) {
  const auto app = testing::make_fig1_app();
  const Fingerprint a = fingerprint_of(*app);
  const Fingerprint b = fingerprint_of(*app);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.to_hex(), b.to_hex());
  EXPECT_EQ(a.to_hex().size(), 32u);
}

TEST(Canonical, RequiresFinalizedApplication) {
  Application app{Platform(1)};
  app.add_task("a", support::ms(10), support::ms(1), CoreId{0});
  EXPECT_THROW(canonicalize(app), support::Error);
}

TEST(Canonical, CanonicalTextMatchesCanonicalApp) {
  const auto app = testing::make_fig1_app();
  const Canonicalization canon = canonicalize(*app);
  EXPECT_TRUE(canon.exact);
  EXPECT_EQ(canon.text, write_application(*canon.app));
  EXPECT_EQ(canon.fingerprint, fingerprint_bytes(canon.text));
  // Canonicalizing the canonical form is a fixed point.
  EXPECT_EQ(canonicalize(*canon.app).text, canon.text);
}

TEST(Canonical, MapsAreValidPermutations) {
  const auto app = testing::make_fig1_app();
  const Canonicalization canon = canonicalize(*app);
  ASSERT_EQ(canon.task_map.size(),
            static_cast<std::size_t>(app->num_tasks()));
  ASSERT_EQ(canon.label_map.size(),
            static_cast<std::size_t>(app->num_labels()));
  ASSERT_EQ(canon.core_map.size(),
            static_cast<std::size_t>(app->platform().num_cores()));
  const std::vector<int> task_inv = invert_permutation(canon.task_map);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(task_inv[static_cast<std::size_t>(
                  canon.task_map[static_cast<std::size_t>(i)])],
              i);
    // The mapped canonical task is the same structural task.
    const Task& orig = app->task(TaskId{i});
    const Task& mapped =
        canon.app->task(TaskId{canon.task_map[static_cast<std::size_t>(i)]});
    EXPECT_EQ(orig.period, mapped.period);
    EXPECT_EQ(orig.wcet, mapped.wcet);
    EXPECT_EQ(canon.core_map[static_cast<std::size_t>(orig.core.value)],
              mapped.core.value);
  }
  const std::vector<int> label_inv = invert_permutation(canon.label_map);
  for (int l = 0; l < app->num_labels(); ++l) {
    const Label& orig = app->label(LabelId{l});
    const Label& mapped = canon.app->label(
        LabelId{canon.label_map[static_cast<std::size_t>(l)]});
    EXPECT_EQ(orig.size_bytes, mapped.size_bytes);
    EXPECT_EQ(canon.task_map[static_cast<std::size_t>(orig.writer.value)],
              mapped.writer.value);
    (void)label_inv;
  }
}

TEST(Canonical, PermutedWatersHasIdenticalFingerprint) {
  const auto app = waters::make_waters_app();
  const Canonicalization base = canonicalize(*app);
  std::mt19937_64 rng(2024);
  for (int round = 0; round < 5; ++round) {
    const auto shuffled = random_relabeling(*app, rng);
    const Canonicalization other = canonicalize(*shuffled);
    EXPECT_EQ(base.text, other.text) << "round " << round;
    EXPECT_EQ(base.fingerprint, other.fingerprint) << "round " << round;
  }
}

TEST(Canonical, PermutedGeneratedInstancesHaveIdenticalFingerprints) {
  std::mt19937_64 rng(7);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratorOptions opt;
    opt.num_cores = 3;
    opt.num_tasks = 10;
    opt.num_labels = 14;
    opt.seed = seed;
    const auto app = generate_application(opt);
    const Fingerprint base = fingerprint_of(*app);
    const auto shuffled = random_relabeling(*app, rng);
    EXPECT_EQ(base, fingerprint_of(*shuffled)) << "seed " << seed;
  }
}

TEST(Canonical, MutatedPeriodChangesFingerprint) {
  GeneratorOptions opt;
  opt.seed = 3;
  const auto app = generate_application(opt);
  const Fingerprint base = fingerprint_of(*app);

  // Rebuild with one task's period nudged by one period quantum.
  Application mutated{app->platform()};
  std::vector<TaskId> ids;
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Task& t = app->task(TaskId{i});
    const support::Time period = i == 0 ? t.period * 2 : t.period;
    ids.push_back(mutated.add_task(t.name, period, t.wcet, t.core,
                                   t.priority));
  }
  for (int l = 0; l < app->num_labels(); ++l) {
    const Label& lab = app->label(LabelId{l});
    std::vector<TaskId> readers;
    for (const TaskId r : lab.readers) {
      readers.push_back(ids[static_cast<std::size_t>(r.value)]);
    }
    mutated.add_label(lab.name, lab.size_bytes,
                      ids[static_cast<std::size_t>(lab.writer.value)],
                      std::move(readers));
  }
  mutated.finalize();
  EXPECT_NE(base, fingerprint_of(mutated));
}

TEST(Canonical, MutatedLabelSizeChangesFingerprint) {
  const auto app = testing::make_fig1_app();
  const Fingerprint base = fingerprint_of(*app);

  auto grown = std::make_unique<Application>(app->platform());
  std::vector<TaskId> ids;
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Task& t = app->task(TaskId{i});
    ids.push_back(grown->add_task(t.name, t.period, t.wcet, t.core,
                                  t.priority));
  }
  for (int l = 0; l < app->num_labels(); ++l) {
    const Label& lab = app->label(LabelId{l});
    std::vector<TaskId> readers;
    for (const TaskId r : lab.readers) {
      readers.push_back(ids[static_cast<std::size_t>(r.value)]);
    }
    grown->add_label(lab.name, lab.size_bytes + (l == 2 ? 1 : 0),
                     ids[static_cast<std::size_t>(lab.writer.value)],
                     std::move(readers));
  }
  grown->finalize();
  EXPECT_NE(base, fingerprint_of(*grown));
}

TEST(Canonical, SymmetricInstanceIsStillInvariant) {
  // Fully symmetric: four identical tasks on one core, no labels between
  // them distinguishable by structure. Refinement cannot split them;
  // individualization must still produce an isomorphism-invariant form.
  auto build = [](const std::vector<int>& order) {
    auto app = std::make_unique<Application>(Platform(2));
    std::vector<TaskId> ids(4);
    for (const int i : order) {
      ids[static_cast<std::size_t>(i)] =
          app->add_task("task" + std::to_string(i), support::ms(10),
                        support::ms(1), CoreId{i % 2});
    }
    app->add_label("ring0", 100, ids[0], {ids[1]});
    app->add_label("ring1", 100, ids[1], {ids[2]});
    app->add_label("ring2", 100, ids[2], {ids[3]});
    app->add_label("ring3", 100, ids[3], {ids[0]});
    app->finalize();
    return app;
  };
  const Fingerprint a = fingerprint_of(*build({0, 1, 2, 3}));
  const Fingerprint b = fingerprint_of(*build({2, 0, 3, 1}));
  EXPECT_EQ(a, b);
}

TEST(Canonical, PermuteApplicationValidatesPermutations) {
  const auto app = testing::make_pair_app();
  EXPECT_THROW(permute_application(*app, {0}), support::Error);
  EXPECT_THROW(permute_application(*app, {1, 1}), support::Error);
}

TEST(Canonical, FingerprintBytesSeparatesCloseInputs) {
  const Fingerprint a = fingerprint_bytes("instance-a");
  const Fingerprint b = fingerprint_bytes("instance-b");
  EXPECT_NE(a, b);
  EXPECT_NE(fingerprint_bytes(""), a);
}

TEST(Canonical, SingleTaskNoLabelsIsDegenerateButWellDefined) {
  auto app = std::make_unique<Application>(Platform(1));
  app->add_task("only", support::ms(10), support::ms(1), CoreId{0});
  app->finalize();
  const Canonicalization canon = canonicalize(*app);
  EXPECT_TRUE(canon.exact);
  EXPECT_EQ(canon.app->num_tasks(), 1);
  EXPECT_EQ(canon.app->num_labels(), 0);
  EXPECT_EQ(canon.fingerprint, canonicalize(*app).fingerprint);
  // A rename does not change the structure.
  auto renamed = std::make_unique<Application>(Platform(1));
  renamed->add_task("other", support::ms(10), support::ms(1), CoreId{0});
  renamed->finalize();
  EXPECT_EQ(canonicalize(*renamed).fingerprint, canon.fingerprint);
}

TEST(Canonical, SingleLabelInstanceIsInvariantUnderPermutation) {
  const auto app = testing::make_pair_app();
  ASSERT_EQ(app->num_labels(), 1);
  const Canonicalization canon = canonicalize(*app);
  const auto permuted = permute_application(*app, {1, 0}, {0}, {1, 0});
  EXPECT_EQ(canonicalize(*permuted).fingerprint, canon.fingerprint);
  EXPECT_EQ(canonicalize(*permuted).text, canon.text);
}

TEST(Canonical, ZeroSizeLabelIsRejectedByTheModel) {
  // Degenerate zero-size labels never reach canonicalization: the model
  // rejects them at construction (sizes are clamped to [1, 2^40] at the
  // io layer too), so canonical forms only ever carry positive sizes.
  auto app = std::make_unique<Application>(Platform(2));
  const TaskId prod =
      app->add_task("P", support::ms(10), support::ms(1), CoreId{0});
  const TaskId cons =
      app->add_task("C", support::ms(10), support::ms(1), CoreId{1});
  EXPECT_THROW(app->add_label("zero", 0, prod, {cons}), support::Error);
  EXPECT_THROW(app->add_label("negative", -5, prod, {cons}), support::Error);
}

}  // namespace
}  // namespace letdma::model
