#include "letdma/model/diff.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_fixtures.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

using support::ms;

/// Fig.1 system with one label's size changed.
std::unique_ptr<Application> make_fig1_resized(std::int64_t lb_bytes) {
  auto app = std::make_unique<Application>(Platform(2));
  const TaskId t1 = app->add_task("tau1", ms(10), ms(2), CoreId{0});
  const TaskId t3 = app->add_task("tau3", ms(20), ms(4), CoreId{0});
  const TaskId t5 = app->add_task("tau5", ms(40), ms(8), CoreId{0});
  const TaskId t2 = app->add_task("tau2", ms(5), ms(1), CoreId{1});
  const TaskId t4 = app->add_task("tau4", ms(20), ms(4), CoreId{1});
  const TaskId t6 = app->add_task("tau6", ms(40), ms(8), CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", lb_bytes, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

TEST(Diff, IdentityDiffIsEmpty) {
  const auto app = testing::make_fig1_app();
  const ApplicationDiff d = diff(*app, *app);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(magnitude(d), 0.0);
  EXPECT_EQ(d.summary(), "identical");
  const auto rebuilt = apply_diff(*app, d);
  EXPECT_EQ(write_application(*rebuilt), write_application(*app));
}

TEST(Diff, DetectsLabelSizeChange) {
  const auto before = testing::make_fig1_app();
  const auto after = make_fig1_resized(9000);
  const ApplicationDiff d = diff(*before, *after);
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(d.labels_changed(), 1);
  EXPECT_EQ(d.labels_added(), 0);
  EXPECT_EQ(d.labels_removed(), 0);
  EXPECT_EQ(d.tasks_added() + d.tasks_removed() + d.tasks_changed(), 0);
  EXPECT_DOUBLE_EQ(magnitude(d), 0.5);
  // Survivor maps are the identity here.
  for (int t = 0; t < before->num_tasks(); ++t) {
    EXPECT_EQ(d.task_map[static_cast<std::size_t>(t)], t);
  }
}

TEST(Diff, RenamedEntityIsRemovePlusAdd) {
  const auto before = testing::make_pair_app();
  auto after = std::make_unique<Application>(Platform(2));
  const TaskId prod = after->add_task("PROD", ms(10), ms(10) / 4, CoreId{0});
  const TaskId cons = after->add_task("CONS", ms(10), ms(10) / 4, CoreId{1});
  after->add_label("y", 1000, prod, {cons});  // "x" renamed to "y"
  after->finalize();
  const ApplicationDiff d = diff(*before, *after);
  EXPECT_EQ(d.labels_removed(), 1);
  EXPECT_EQ(d.labels_added(), 1);
  EXPECT_EQ(d.label_map[0], -1);
  EXPECT_EQ(write_application(*apply_diff(*before, d)),
            write_application(*after));
}

TEST(Diff, RoundTripsOnGeneratedPairs) {
  // 100 generated instance pairs of varying size (sharing the generator's
  // naming scheme, so the diff sees a mix of matched, changed, added and
  // removed entities): apply_diff rebuilds the after side byte-identically.
  for (int i = 0; i < 100; ++i) {
    GeneratorOptions oa;
    oa.num_cores = 2 + i % 3;
    oa.num_tasks = 3 + i % 6;
    oa.num_labels = 2 + i % 8;
    oa.seed = 1000 + static_cast<std::uint64_t>(i);
    GeneratorOptions ob = oa;
    ob.num_tasks = 3 + (i + 2) % 6;
    ob.num_labels = 2 + (i + 3) % 8;
    ob.seed = 5000 + static_cast<std::uint64_t>(i);
    const auto a = generate_application(oa);
    const auto b = generate_application(ob);
    const ApplicationDiff d = diff(*a, *b);
    const auto rebuilt = apply_diff(*a, d);
    ASSERT_EQ(write_application(*rebuilt), write_application(*b))
        << "pair " << i << ": " << d.summary();
    // The rebuilt instance diffs empty against the target.
    EXPECT_TRUE(diff(*b, *rebuilt).empty()) << "pair " << i;
  }
}

TEST(Diff, CarriesPlatformChange) {
  const auto before = testing::make_fig1_app();
  auto after = make_fig1_resized(4000);  // same model...
  ASSERT_TRUE(diff(*before, *after).empty());
  // ...now on a different platform.
  Platform p(2);
  DmaParams dma = p.dma();
  dma.programming_overhead *= 2;
  Platform changed(2, dma, p.cpu_copy());
  auto moved = std::make_unique<Application>(changed);
  for (int t = 0; t < before->num_tasks(); ++t) {
    const Task& task = before->task(TaskId{t});
    moved->add_task(task.name, task.period, task.wcet, task.core,
                    task.priority);
  }
  for (int l = 0; l < before->num_labels(); ++l) {
    const Label& label = before->label(LabelId{l});
    moved->add_label(label.name, label.size_bytes, label.writer,
                     label.readers);
  }
  moved->finalize();
  const ApplicationDiff d = diff(*before, *moved);
  EXPECT_TRUE(d.platform.has_value());
  EXPECT_FALSE(d.empty());
  EXPECT_EQ(write_application(*apply_diff(*before, d)),
            write_application(*moved));
}

TEST(Diff, StructuralDistanceZeroForIsomorphicInstances) {
  const auto app = testing::make_fig1_app();
  const auto permuted = permute_application(*app, {5, 4, 3, 2, 1, 0},
                                            {1, 0, 3, 2, 5, 4}, {1, 0});
  EXPECT_DOUBLE_EQ(structural_distance(*app, *permuted), 0.0);
}

TEST(Diff, StructuralDistanceGrowsWithTheEdit) {
  const auto base = testing::make_fig1_app();
  const auto small = make_fig1_resized(9000);
  const double d_small = structural_distance(*base, *small);
  EXPECT_GT(d_small, 0.0);
  EXPECT_LE(d_small, 1.0);
  const auto big = testing::make_multireader_app();
  const double d_big = structural_distance(*base, *big);
  EXPECT_GT(d_big, d_small);
  EXPECT_LE(d_big, 1.0);
}

TEST(Diff, CanonicalDistanceMatchesStructuralDistance) {
  const auto a = testing::make_fig1_app();
  const auto b = make_fig1_resized(9000);
  const Canonicalization ca = canonicalize(*a);
  const Canonicalization cb = canonicalize(*b);
  EXPECT_DOUBLE_EQ(canonical_distance(*ca.app, *cb.app),
                   structural_distance(*a, *b));
}

TEST(Diff, RequiresFinalizedApplications) {
  const auto done = testing::make_pair_app();
  Application raw{Platform(2)};
  raw.add_task("a", ms(10), ms(1), CoreId{0});
  EXPECT_THROW(diff(*done, raw), support::Error);
  EXPECT_THROW(diff(raw, *done), support::Error);
}

}  // namespace
}  // namespace letdma::model
