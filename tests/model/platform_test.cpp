#include "letdma/model/platform.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

TEST(Platform, MemoryIdsLayout) {
  Platform p(3);
  EXPECT_EQ(p.num_cores(), 3);
  EXPECT_EQ(p.num_memories(), 4);
  EXPECT_EQ(p.local_memory(CoreId{0}).value, 0);
  EXPECT_EQ(p.local_memory(CoreId{2}).value, 2);
  EXPECT_EQ(p.global_memory().value, 3);
  EXPECT_TRUE(p.is_global(p.global_memory()));
  EXPECT_FALSE(p.is_global(p.local_memory(CoreId{1})));
}

TEST(Platform, CoreOfLocalMemory) {
  Platform p(2);
  EXPECT_EQ(p.core_of(MemoryId{1}).value, 1);
  EXPECT_THROW(p.core_of(p.global_memory()), support::PreconditionError);
}

TEST(Platform, MemoryNames) {
  Platform p(2);
  EXPECT_EQ(p.memory_name(MemoryId{0}), "M_1");
  EXPECT_EQ(p.memory_name(MemoryId{1}), "M_2");
  EXPECT_EQ(p.memory_name(p.global_memory()), "M_G");
}

TEST(Platform, RejectsZeroCores) {
  EXPECT_THROW(Platform(0), support::PreconditionError);
}

TEST(Platform, UnknownCoreThrows) {
  Platform p(2);
  EXPECT_THROW(p.local_memory(CoreId{2}), support::PreconditionError);
  EXPECT_THROW(p.local_memory(CoreId{-1}), support::PreconditionError);
}

TEST(DmaParams, PaperDefaults) {
  DmaParams d;
  EXPECT_EQ(d.programming_overhead, support::us(3.36));
  EXPECT_EQ(d.isr_overhead, support::us(10));
  EXPECT_EQ(d.per_transfer_overhead(), support::us(13.36));
}

TEST(DmaParams, CopyTimeScalesWithBytes) {
  DmaParams d;
  d.copy_cost_ns_per_byte = 2.0;
  EXPECT_EQ(d.copy_time(1000), 2000);
  EXPECT_EQ(d.copy_time(0), 0);
}

TEST(CpuCopyParams, IncludesPerLabelOverhead) {
  CpuCopyParams c;
  c.copy_cost_ns_per_byte = 4.0;
  c.per_label_overhead = 200;
  EXPECT_EQ(c.copy_time(100), 200 + 400);
}

TEST(Platform, RejectsNegativeDmaCosts) {
  DmaParams d;
  d.copy_cost_ns_per_byte = -1.0;
  EXPECT_THROW(Platform(1, d), support::PreconditionError);
}

}  // namespace
}  // namespace letdma::model
