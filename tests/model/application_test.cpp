#include "letdma/model/application.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

using support::ms;

TEST(Application, BuildAndQueryPairApp) {
  const auto app = testing::make_pair_app();
  EXPECT_EQ(app->num_tasks(), 2);
  EXPECT_EQ(app->num_labels(), 1);
  EXPECT_EQ(app->task(TaskId{0}).name, "PROD");
  EXPECT_EQ(app->find_task("CONS").value, 1);
  EXPECT_THROW(app->find_task("NOPE"), support::PreconditionError);
}

TEST(Application, InterCoreEdges) {
  const auto app = testing::make_pair_app();
  const auto& edges = app->inter_core_edges();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].producer.value, 0);
  EXPECT_EQ(edges[0].consumer.value, 1);
  EXPECT_TRUE(app->is_inter_core(LabelId{0}));
}

TEST(Application, IntraCoreReaderGeneratesNoEdge) {
  const auto app = testing::make_multireader_app();
  // 3 readers, but one on the producer's core: only 2 inter-core edges.
  EXPECT_EQ(app->inter_core_edges().size(), 2u);
}

TEST(Application, SharedLabelsPerPair) {
  const auto app = testing::make_multireader_app();
  const TaskId prod = app->find_task("PROD");
  const TaskId c1 = app->find_task("C1");
  const TaskId local = app->find_task("LOCAL");
  EXPECT_EQ(app->shared_labels(prod, c1).size(), 1u);
  EXPECT_TRUE(app->shared_labels(prod, local).empty());
  EXPECT_TRUE(app->shared_labels(c1, prod).empty());
}

TEST(Application, RateMonotonicPriorityAssignment) {
  Application app{Platform(1)};
  const TaskId slow = app.add_task("slow", ms(100), ms(1), CoreId{0});
  const TaskId fast = app.add_task("fast", ms(5), ms(1), CoreId{0});
  const TaskId mid = app.add_task("mid", ms(50), ms(1), CoreId{0});
  app.finalize();
  EXPECT_EQ(app.task(fast).priority, 0);
  EXPECT_EQ(app.task(mid).priority, 1);
  EXPECT_EQ(app.task(slow).priority, 2);
}

TEST(Application, TasksOnSortedByPriority) {
  const auto app = testing::make_fig1_app();
  const auto on0 = app->tasks_on(CoreId{0});
  ASSERT_EQ(on0.size(), 3u);
  EXPECT_EQ(app->task(on0[0]).name, "tau1");  // smallest period on P1
  EXPECT_EQ(app->task(on0[2]).name, "tau5");
}

TEST(Application, HyperperiodOfFig1) {
  const auto app = testing::make_fig1_app();
  EXPECT_EQ(app->hyperperiod(), ms(40));
}

TEST(Application, ValidationErrors) {
  Application app{Platform(2)};
  const TaskId t = app.add_task("a", ms(10), ms(1), CoreId{0});
  EXPECT_THROW(app.add_task("a", ms(10), ms(1), CoreId{0}),
               support::PreconditionError);  // duplicate name
  EXPECT_THROW(app.add_task("b", 0, 0, CoreId{0}),
               support::PreconditionError);  // period
  EXPECT_THROW(app.add_task("c", ms(10), ms(20), CoreId{0}),
               support::PreconditionError);  // wcet > period
  EXPECT_THROW(app.add_task("d", ms(10), ms(1), CoreId{5}),
               support::PreconditionError);  // unknown core
  EXPECT_THROW(app.add_label("x", 0, t, {}), support::PreconditionError);
  EXPECT_THROW(app.add_label("x", 10, t, {t}),
               support::PreconditionError);  // reads own label
  EXPECT_THROW(app.add_label("x", 10, TaskId{9}, {}),
               support::PreconditionError);  // unknown writer
}

TEST(Application, FinalizeLocksMutation) {
  auto app = testing::make_pair_app();
  EXPECT_TRUE(app->finalized());
  EXPECT_THROW(app->add_task("late", ms(10), ms(1), CoreId{0}),
               support::PreconditionError);
  EXPECT_THROW(app->finalize(), support::PreconditionError);
}

TEST(Application, QueriesRequireFinalize) {
  Application app{Platform(2)};
  const TaskId t = app.add_task("a", ms(10), ms(1), CoreId{0});
  (void)t;
  EXPECT_THROW(app.inter_core_edges(), support::PreconditionError);
}

TEST(Application, AcquisitionDeadlineRoundtrip) {
  auto app = testing::make_pair_app();
  const TaskId cons = app->find_task("CONS");
  EXPECT_FALSE(app->task(cons).acquisition_deadline.has_value());
  app->set_acquisition_deadline(cons, ms(1));
  EXPECT_EQ(app->task(cons).acquisition_deadline.value(), ms(1));
}

TEST(Application, DuplicateReaderRejected) {
  Application app{Platform(2)};
  const TaskId p = app.add_task("p", ms(10), ms(1), CoreId{0});
  const TaskId c = app.add_task("c", ms(10), ms(1), CoreId{1});
  EXPECT_THROW(app.add_label("x", 10, p, {c, c}),
               support::PreconditionError);
}

}  // namespace
}  // namespace letdma::model
