#include "letdma/model/io.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

using support::PreconditionError;

TEST(Io, RoundTripFig1) {
  const auto app = testing::make_fig1_app();
  const std::string text = write_application(*app);
  const auto loaded = read_application(text);
  ASSERT_EQ(loaded->num_tasks(), app->num_tasks());
  ASSERT_EQ(loaded->num_labels(), app->num_labels());
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Task& a = app->task(TaskId{i});
    const Task& b = loaded->task(TaskId{i});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.period, b.period);
    EXPECT_EQ(a.wcet, b.wcet);
    EXPECT_EQ(a.core.value, b.core.value);
    EXPECT_EQ(a.priority, b.priority);
  }
  for (int l = 0; l < app->num_labels(); ++l) {
    const Label& a = app->label(LabelId{l});
    const Label& b = loaded->label(LabelId{l});
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.size_bytes, b.size_bytes);
    EXPECT_EQ(a.readers.size(), b.readers.size());
  }
  // Second round trip is byte-identical (canonical form).
  EXPECT_EQ(write_application(*loaded), text);
}

TEST(Io, RoundTripPreservesGamma) {
  auto app = testing::make_pair_app();
  app->set_acquisition_deadline(app->find_task("CONS"), support::us(250));
  const auto loaded = read_application(write_application(*app));
  EXPECT_EQ(loaded->task(loaded->find_task("CONS"))
                .acquisition_deadline.value(),
            support::us(250));
}

TEST(Io, RoundTripPreservesPlatformCosts) {
  DmaParams dma;
  dma.programming_overhead = 1111;
  dma.isr_overhead = 2222;
  dma.copy_cost_ns_per_byte = 0.125;
  CpuCopyParams cpu;
  cpu.copy_cost_ns_per_byte = 3.5;
  cpu.per_label_overhead = 77;
  Application app{Platform(3, dma, cpu)};
  const auto t = app.add_task("a", support::ms(10), support::ms(1),
                              CoreId{0});
  (void)t;
  app.finalize();
  const auto loaded = read_application(write_application(app));
  EXPECT_EQ(loaded->platform().dma().programming_overhead, 1111);
  EXPECT_EQ(loaded->platform().dma().isr_overhead, 2222);
  EXPECT_EQ(loaded->platform().dma().copy_cost_ns_per_byte, 0.125);
  EXPECT_EQ(loaded->platform().cpu_copy().copy_cost_ns_per_byte, 3.5);
  EXPECT_EQ(loaded->platform().cpu_copy().per_label_overhead, 77);
}

class IoRandomRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(IoRandomRoundTrip, GeneratedAppsRoundTrip) {
  GeneratorOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam());
  opt.num_tasks = 4 + GetParam() % 8;
  opt.num_labels = 2 + GetParam() % 10;
  const auto app = generate_application(opt);
  const std::string text = write_application(*app);
  const auto loaded = read_application(text);
  EXPECT_EQ(write_application(*loaded), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRandomRoundTrip, ::testing::Range(0, 10));

TEST(Io, CommentsAndBlankLinesIgnored) {
  const auto loaded = read_application(
      "# header comment\n"
      "\n"
      "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=0\n"
      "task name=a period_ns=1000000 wcet_ns=1 core=0  # trailing comment\n"
      "task name=b period_ns=1000000 wcet_ns=1 core=1\n"
      "label name=x bytes=8 writer=a readers=b\n");
  EXPECT_EQ(loaded->num_tasks(), 2);
  EXPECT_EQ(loaded->num_labels(), 1);
}

TEST(Io, ErrorsCarryLineNumbers) {
  try {
    read_application(
        "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=0\n"
        "task name=a period_ns=1000000 wcet_ns=1 core=0\n"
        "label name=x bytes=8 writer=NOPE readers=a\n");
    FAIL() << "expected a parse error";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("NOPE"), std::string::npos);
  }
}

TEST(Io, MalformedInputsRejected) {
  EXPECT_THROW(read_application(""), PreconditionError);
  EXPECT_THROW(read_application("bogus directive=1\n"), PreconditionError);
  EXPECT_THROW(
      read_application("task name=a period_ns=1 wcet_ns=1 core=0\n"),
      PreconditionError);  // task before platform
  EXPECT_THROW(
      read_application(
          "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=0\n"
          "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=0\n"),
      PreconditionError);  // duplicate platform
  EXPECT_THROW(
      read_application("platform cores=two odp_ns=1 oisr_ns=1 wc=1 "
                       "cpu_wc=1 cpu_oh_ns=0\n"),
      PreconditionError);  // non-integer
  EXPECT_THROW(
      read_application("platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 "
                       "cpu_oh_ns=0 extra=1\n"),
      PreconditionError);  // unknown key
  EXPECT_THROW(
      read_application("platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 "
                       "cpu_oh_ns=0\n"
                       "task name=a period_ns=1000 wcet_ns=1 core=0\n"
                       "label name=x bytes=8 writer=a readers=\n"),
      PreconditionError);  // no readers
}

TEST(Io, SerializeRequiresFinalized) {
  Application app{Platform(2)};
  app.add_task("a", support::ms(1), 1, CoreId{0});
  EXPECT_THROW(write_application(app), PreconditionError);
}

}  // namespace
}  // namespace letdma::model
