#include "letdma/model/generator.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

TEST(Generator, ProducesRequestedShape) {
  GeneratorOptions opt;
  opt.num_cores = 3;
  opt.num_tasks = 7;
  opt.num_labels = 5;
  opt.seed = 99;
  const auto app = generate_application(opt);
  EXPECT_EQ(app->platform().num_cores(), 3);
  EXPECT_EQ(app->num_tasks(), 7);
  EXPECT_EQ(app->num_labels(), 5);
  EXPECT_TRUE(app->finalized());
}

TEST(Generator, DeterministicInSeed) {
  GeneratorOptions opt;
  opt.seed = 1234;
  const auto a = generate_application(opt);
  const auto b = generate_application(opt);
  ASSERT_EQ(a->num_tasks(), b->num_tasks());
  for (int i = 0; i < a->num_tasks(); ++i) {
    EXPECT_EQ(a->task(TaskId{i}).period, b->task(TaskId{i}).period);
    EXPECT_EQ(a->task(TaskId{i}).wcet, b->task(TaskId{i}).wcet);
    EXPECT_EQ(a->task(TaskId{i}).core.value, b->task(TaskId{i}).core.value);
  }
  for (int l = 0; l < a->num_labels(); ++l) {
    EXPECT_EQ(a->label(LabelId{l}).size_bytes, b->label(LabelId{l}).size_bytes);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorOptions a_opt, b_opt;
  a_opt.seed = 1;
  b_opt.seed = 2;
  const auto a = generate_application(a_opt);
  const auto b = generate_application(b_opt);
  bool any_diff = false;
  for (int i = 0; i < a->num_tasks(); ++i) {
    any_diff |= a->task(TaskId{i}).period != b->task(TaskId{i}).period;
    any_diff |= a->task(TaskId{i}).wcet != b->task(TaskId{i}).wcet;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, UtilizationRoughlyMatches) {
  GeneratorOptions opt;
  opt.num_tasks = 20;
  opt.total_utilization = 1.2;
  opt.num_cores = 4;
  opt.seed = 5;
  const auto app = generate_application(opt);
  double total = 0;
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Task& t = app->task(TaskId{i});
    total += static_cast<double>(t.wcet) / static_cast<double>(t.period);
  }
  // WCET rounding and the 0.9 per-task cap skew slightly downward.
  EXPECT_GT(total, 0.6);
  EXPECT_LT(total, 1.3);
}

TEST(Generator, LabelSizesWithinBounds) {
  GeneratorOptions opt;
  opt.min_label_bytes = 100;
  opt.max_label_bytes = 200;
  opt.num_labels = 30;
  opt.seed = 6;
  const auto app = generate_application(opt);
  for (int l = 0; l < app->num_labels(); ++l) {
    EXPECT_GE(app->label(LabelId{l}).size_bytes, 100);
    EXPECT_LE(app->label(LabelId{l}).size_bytes, 200);
  }
}

TEST(Generator, RejectsBadOptions) {
  GeneratorOptions opt;
  opt.num_cores = 1;
  EXPECT_THROW(generate_application(opt), support::PreconditionError);
  opt = {};
  opt.total_utilization = 0;
  EXPECT_THROW(generate_application(opt), support::PreconditionError);
  opt = {};
  opt.min_label_bytes = 10;
  opt.max_label_bytes = 5;
  EXPECT_THROW(generate_application(opt), support::PreconditionError);
  opt = {};
  opt.max_readers = 0;
  EXPECT_THROW(generate_application(opt), support::PreconditionError);
}

TEST(Generator, EveryLabelHasAtLeastOneReader) {
  GeneratorOptions opt;
  opt.num_labels = 25;
  opt.seed = 77;
  const auto app = generate_application(opt);
  for (int l = 0; l < app->num_labels(); ++l) {
    EXPECT_FALSE(app->label(LabelId{l}).readers.empty());
  }
}

}  // namespace
}  // namespace letdma::model
