// Write/read round-trip property over generated instances: every field
// that write_application emits must survive read_application exactly, and
// the second serialization must be byte-identical (the text format is a
// canonical encoding of a finalized application). This is the durability
// contract behind both the on-disk model corpus and the serve wire
// protocol, which ships models as this text.
#include <gtest/gtest.h>

#include <string>

#include "letdma/model/application.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/time.hpp"

namespace letdma::model {
namespace {

void expect_equivalent(const Application& a, const Application& b,
                       const std::string& context) {
  ASSERT_EQ(a.num_tasks(), b.num_tasks()) << context;
  ASSERT_EQ(a.num_labels(), b.num_labels()) << context;
  ASSERT_EQ(a.platform().num_cores(), b.platform().num_cores()) << context;
  EXPECT_EQ(a.platform().dma().programming_overhead,
            b.platform().dma().programming_overhead)
      << context;
  EXPECT_EQ(a.platform().dma().isr_overhead, b.platform().dma().isr_overhead)
      << context;
  EXPECT_EQ(a.platform().dma().copy_cost_ns_per_byte,
            b.platform().dma().copy_cost_ns_per_byte)
      << context;
  EXPECT_EQ(a.platform().cpu_copy().copy_cost_ns_per_byte,
            b.platform().cpu_copy().copy_cost_ns_per_byte)
      << context;
  EXPECT_EQ(a.platform().cpu_copy().per_label_overhead,
            b.platform().cpu_copy().per_label_overhead)
      << context;
  for (int i = 0; i < a.num_tasks(); ++i) {
    const Task& ta = a.task(TaskId{i});
    const Task& tb = b.task(TaskId{i});
    EXPECT_EQ(ta.name, tb.name) << context;
    EXPECT_EQ(ta.period, tb.period) << context;
    EXPECT_EQ(ta.wcet, tb.wcet) << context;
    EXPECT_EQ(ta.core.value, tb.core.value) << context;
    EXPECT_EQ(ta.priority, tb.priority) << context;
    EXPECT_EQ(ta.acquisition_deadline, tb.acquisition_deadline) << context;
  }
  for (int l = 0; l < a.num_labels(); ++l) {
    const Label& la = a.label(LabelId{l});
    const Label& lb = b.label(LabelId{l});
    EXPECT_EQ(la.name, lb.name) << context;
    EXPECT_EQ(la.size_bytes, lb.size_bytes) << context;
    EXPECT_EQ(la.writer.value, lb.writer.value) << context;
    ASSERT_EQ(la.readers.size(), lb.readers.size()) << context;
    for (std::size_t r = 0; r < la.readers.size(); ++r) {
      EXPECT_EQ(la.readers[r].value, lb.readers[r].value) << context;
    }
  }
}

TEST(IoProperty, RoundTripOverGeneratedInstances) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    GeneratorOptions opt;
    opt.num_cores = 2 + static_cast<int>(seed % 4);
    opt.num_tasks = 4 + static_cast<int>(seed % 9);
    opt.num_labels = 4 + static_cast<int>(seed % 13);
    opt.total_utilization = 0.2 + 0.05 * static_cast<double>(seed % 7);
    opt.max_readers = 1 + static_cast<int>(seed % 3);
    opt.seed = seed;
    const auto app = generate_application(opt);
    const std::string context = "seed " + std::to_string(seed);

    const std::string text = write_application(*app);
    const auto loaded = read_application(text);
    expect_equivalent(*app, *loaded, context);
    EXPECT_EQ(write_application(*loaded), text) << context;
  }
}

TEST(IoProperty, RoundTripPreservesGammaIncludingZero) {
  // gamma_ns=0 is a legal acquisition deadline (the model admits
  // gamma >= 0); the reader used to reject its own writer's output here.
  GeneratorOptions opt;
  opt.seed = 11;
  auto app = generate_application(opt);
  // Rebuild with explicit deadlines, including the zero edge case.
  Application tight{app->platform()};
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Task& t = app->task(TaskId{i});
    const TaskId id = tight.add_task(t.name, t.period, t.wcet, t.core,
                                     t.priority);
    tight.set_acquisition_deadline(id, i == 0 ? 0 : t.period / 2);
  }
  for (int l = 0; l < app->num_labels(); ++l) {
    const Label& lab = app->label(LabelId{l});
    std::vector<TaskId> readers;
    for (const TaskId r : lab.readers) readers.push_back(r);
    tight.add_label(lab.name, lab.size_bytes, lab.writer, std::move(readers));
  }
  tight.finalize();

  const auto loaded = read_application(write_application(tight));
  expect_equivalent(tight, *loaded, "explicit gammas");
  EXPECT_EQ(loaded->task(TaskId{0}).acquisition_deadline, support::Time{0});
}

}  // namespace
}  // namespace letdma::model
