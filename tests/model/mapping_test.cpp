#include "letdma/model/mapping.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/analysis/rta.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/support/error.hpp"

namespace letdma::model {
namespace {

using support::ms;

TEST(CloneWithMapping, PreservesEverythingButCores) {
  auto app = testing::make_fig1_app();
  app->set_acquisition_deadline(app->find_task("tau2"), support::us(500));
  // Swap the two cores.
  std::vector<int> mapping;
  for (int i = 0; i < app->num_tasks(); ++i) {
    mapping.push_back(1 - app->task(TaskId{i}).core.value);
  }
  const auto clone = clone_with_mapping(*app, mapping);
  ASSERT_EQ(clone->num_tasks(), app->num_tasks());
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(clone->task(TaskId{i}).core.value,
              1 - app->task(TaskId{i}).core.value);
    EXPECT_EQ(clone->task(TaskId{i}).period, app->task(TaskId{i}).period);
    EXPECT_EQ(clone->task(TaskId{i}).wcet, app->task(TaskId{i}).wcet);
  }
  EXPECT_EQ(clone->task(clone->find_task("tau2"))
                .acquisition_deadline.value(),
            support::us(500));
  // A full swap keeps the same inter-core structure.
  EXPECT_EQ(clone->inter_core_edges().size(),
            app->inter_core_edges().size());
}

TEST(CloneWithMapping, RejectsBadMappings) {
  const auto app = testing::make_fig1_app();
  EXPECT_THROW(clone_with_mapping(*app, {0, 1}),
               support::PreconditionError);  // wrong arity
  std::vector<int> bad(static_cast<std::size_t>(app->num_tasks()), 7);
  EXPECT_THROW(clone_with_mapping(*app, bad), support::PreconditionError);
}

TEST(InterCoreBytes, CountsWritePlusRemoteReads) {
  const auto app = testing::make_multireader_app();
  // "shared" (5000 B) has two remote readers: 5000 * (1 + 2).
  EXPECT_EQ(inter_core_bytes(*app), 5000 * 3);
}

TEST(InterCoreBytes, ZeroWhenColocated) {
  Application app{Platform(2)};
  const auto a = app.add_task("a", ms(10), ms(1), CoreId{0});
  const auto b = app.add_task("b", ms(10), ms(1), CoreId{0});
  app.add_label("x", 1000, a, {b});
  app.finalize();
  EXPECT_EQ(inter_core_bytes(app), 0);
}

TEST(MinimizeTraffic, ColocatesChainWhenUtilizationAllows) {
  // A light producer/consumer pair on different cores: the search should
  // fold them together and eliminate all traffic.
  const auto app = testing::make_pair_app();
  MappingSearchOptions opt;
  opt.max_core_utilization = 0.9;
  const MappingSearchResult r = minimize_inter_core_traffic(*app, opt);
  EXPECT_EQ(r.bytes, 0);
  EXPECT_GE(r.moves, 1);
  EXPECT_EQ(r.core_of_task[0], r.core_of_task[1]);
}

TEST(MinimizeTraffic, RespectsUtilizationCap) {
  // Two heavy tasks (60% each) cannot share a core under a 0.8 cap.
  Application app{Platform(2)};
  const auto a = app.add_task("a", ms(10), ms(6), CoreId{0});
  const auto b = app.add_task("b", ms(10), ms(6), CoreId{1});
  app.add_label("x", 100000, a, {b});
  app.finalize();
  MappingSearchOptions opt;
  opt.max_core_utilization = 0.8;
  const MappingSearchResult r = minimize_inter_core_traffic(app, opt);
  EXPECT_NE(r.core_of_task[0], r.core_of_task[1]);  // move rejected
  EXPECT_EQ(r.bytes, inter_core_bytes(app));
}

TEST(MinimizeTraffic, NeverIncreasesBytes) {
  for (int seed = 0; seed < 10; ++seed) {
    GeneratorOptions gopt;
    gopt.seed = static_cast<std::uint64_t>(seed) * 887 + 3;
    gopt.num_tasks = 8;
    gopt.num_labels = 8;
    const auto app = generate_application(gopt);
    const std::int64_t before = inter_core_bytes(*app);
    const MappingSearchResult r = minimize_inter_core_traffic(*app);
    EXPECT_LE(r.bytes, before) << "seed " << seed;
    // The reported mapping reproduces the reported bytes.
    const auto clone = clone_with_mapping(*app, r.core_of_task);
    EXPECT_EQ(inter_core_bytes(*clone), r.bytes);
  }
}

TEST(MinimizeTraffic, ClonedResultStaysSchedulable) {
  const auto app = testing::make_fig1_app();
  ASSERT_TRUE(analysis::analyze(*app).schedulable);
  MappingSearchOptions opt;
  opt.max_core_utilization = 0.7;
  const MappingSearchResult r = minimize_inter_core_traffic(*app, opt);
  const auto clone = clone_with_mapping(*app, r.core_of_task);
  // Utilization cap 0.7 on this light task set keeps RM schedulability.
  EXPECT_TRUE(analysis::analyze(*clone).schedulable);
}

}  // namespace
}  // namespace letdma::model
