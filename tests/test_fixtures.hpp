// Shared application fixtures for letdma tests.
#pragma once

#include <memory>

#include "letdma/model/application.hpp"

namespace letdma::testing {

using model::Application;
using model::CoreId;
using model::LabelId;
using model::Platform;
using model::TaskId;
using support::ms;
using support::us;

/// Two tasks on two cores, one shared label: the smallest useful system.
inline std::unique_ptr<Application> make_pair_app(
    support::Time producer_period = ms(10),
    support::Time consumer_period = ms(10), std::int64_t label_bytes = 1000) {
  auto app = std::make_unique<Application>(Platform(2));
  const TaskId prod =
      app->add_task("PROD", producer_period, producer_period / 4, CoreId{0});
  const TaskId cons =
      app->add_task("CONS", consumer_period, consumer_period / 4, CoreId{1});
  app->add_label("x", label_bytes, prod, {cons});
  app->finalize();
  return app;
}

/// A Fig.1-style system: six tasks on two cores, six cross-coupled labels.
/// tau1/tau3/tau5 on P1 produce lA/lB/lC for tau2/tau4/tau6 on P2, which
/// produce lD/lE/lF back. tau2 is latency-sensitive (smallest period).
inline std::unique_ptr<Application> make_fig1_app() {
  auto app = std::make_unique<Application>(Platform(2));
  const TaskId t1 = app->add_task("tau1", ms(10), ms(2), CoreId{0});
  const TaskId t3 = app->add_task("tau3", ms(20), ms(4), CoreId{0});
  const TaskId t5 = app->add_task("tau5", ms(40), ms(8), CoreId{0});
  const TaskId t2 = app->add_task("tau2", ms(5), ms(1), CoreId{1});
  const TaskId t4 = app->add_task("tau4", ms(20), ms(4), CoreId{1});
  const TaskId t6 = app->add_task("tau6", ms(40), ms(8), CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", 4000, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

/// Producer with two consumers on different cores (multi-reader label) plus
/// an intra-core reader that must NOT generate DMA traffic.
inline std::unique_ptr<Application> make_multireader_app() {
  auto app = std::make_unique<Application>(Platform(3));
  const TaskId prod = app->add_task("PROD", ms(10), ms(1), CoreId{0});
  const TaskId local = app->add_task("LOCAL", ms(10), ms(1), CoreId{0});
  const TaskId c1 = app->add_task("C1", ms(20), ms(2), CoreId{1});
  const TaskId c2 = app->add_task("C2", ms(5), ms(1), CoreId{2});
  app->add_label("shared", 5000, prod, {local, c1, c2});
  app->finalize();
  return app;
}

}  // namespace letdma::testing
