// End-to-end integration: the full evaluation pipeline of Section VII on
// the WATERS case study, from sensitivity analysis through scheduling,
// validation, protocol-aware schedulability, simulation and persistence.
#include <gtest/gtest.h>

#include "letdma/analysis/protocol_rta.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/engine/engine.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/io.hpp"
#include "letdma/sim/simulator.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma {
namespace {

TEST(Pipeline, WatersEndToEnd) {
  // 1. Case study + acquisition deadlines (alpha = 0.2).
  auto app = waters::make_waters_app();
  const auto sens = analysis::acquisition_deadlines(*app, 0.2);
  ASSERT_TRUE(sens.feasible);
  analysis::apply_acquisition_deadlines(*app, sens.gamma);

  // 2. Schedule through the engine: greedy seed polished by local search.
  let::LetComms comms(*app);
  const engine::ScheduleOutcome polished = engine::solve_with(
      "ls", comms, engine::Objective::kMinMaxLatencyRatio, 10.0);
  ASSERT_EQ(polished.status, engine::Status::kFeasible);
  ASSERT_TRUE(polished.feasible());
  const let::ScheduleResult& sched = *polished.schedule;

  // 3. Validation: every LET property at every instant, deadlines included.
  const let::ValidationReport report =
      validate_schedule(comms, sched.layout, sched.schedule);
  ASSERT_TRUE(report.ok()) << report.summary();

  // 4. Protocol-aware schedulability (both interference models).
  for (const auto model : {analysis::InterferenceModel::kSporadic,
                           analysis::InterferenceModel::kDemandBound}) {
    const analysis::RtaResult rta = analysis::analyze_with_protocol(
        comms, sched.schedule, let::ReadinessSemantics::kProposed, model);
    EXPECT_TRUE(rta.schedulable);
  }

  // 5. Simulation over one hyperperiod: no deadline miss, measured
  //    latencies equal the analytical model.
  const sim::SimResult sr =
      sim::ProtocolSimulator(comms, &sched.schedule,
                             {sim::Mode::kProposedDma, 0})
          .run();
  EXPECT_TRUE(sr.all_deadlines_met());
  const auto analytical = let::worst_case_latencies(
      comms, sched.schedule, let::ReadinessSemantics::kProposed);
  for (int task = 0; task < static_cast<int>(analytical.size()); ++task) {
    EXPECT_EQ(sr.max_latency.at(task),
              analytical[static_cast<std::size_t>(task)]);
  }

  // 6. The proposed schedule beats every baseline for the urgent tasks.
  const auto cpu = baseline::giotto_cpu_latencies(comms);
  const auto dma_a = baseline::giotto_dma_a(comms);
  const auto a_lat = baseline::giotto_dma_latencies(comms, dma_a);
  for (const char* name : {"DASM", "CAN", "EKF", "PLAN"}) {
    const int id = app->find_task(name).value;
    EXPECT_LT(analytical.at(id), cpu.at(id)) << name;
    EXPECT_LT(analytical.at(id), a_lat.at(id)) << name;
  }

  // 7. Persistence: application and schedule round-trip and re-validate.
  const auto app2 = model::read_application(model::write_application(*app));
  let::LetComms comms2(*app2);
  const let::ScheduleResult loaded =
      let::read_schedule(comms2, let::write_schedule(*app, sched));
  const let::ValidationReport report2 =
      validate_schedule(comms2, loaded.layout, loaded.schedule);
  EXPECT_TRUE(report2.ok()) << report2.summary();
}

}  // namespace
}  // namespace letdma
