#include "letdma/support/table.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::support {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"task", "lambda"});
  t.add_row({"DASM", "12.5"});
  t.add_row({"LIDAR_GRABBER", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| task"), std::string::npos);
  EXPECT_NE(out.find("DASM"), std::string::npos);
  EXPECT_NE(out.find("LIDAR_GRABBER"), std::string::npos);
  // All lines equally wide.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, EmptyHeadersThrow) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(FmtDouble, Decimals) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_double(1.0, 0), "1");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace letdma::support
