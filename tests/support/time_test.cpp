#include "letdma/support/time.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::support {
namespace {

TEST(TimeUnits, Conversions) {
  EXPECT_EQ(us(1), 1'000);
  EXPECT_EQ(ms(1), 1'000'000);
  EXPECT_EQ(us(3.36), 3'360);
  EXPECT_DOUBLE_EQ(to_us(3'360), 3.36);
  EXPECT_DOUBLE_EQ(to_ms(15'000'000), 15.0);
}

TEST(FormatTime, PicksUnit) {
  EXPECT_EQ(format_time(ns(5)), "5ns");
  EXPECT_EQ(format_time(us(3.36)), "3.36us");
  EXPECT_EQ(format_time(ms(15)), "15ms");
  EXPECT_EQ(format_time(2 * kSecond), "2s");
  EXPECT_EQ(format_time(-us(2)), "-2us");
}

TEST(Hyperperiod, WatersLikePeriods) {
  // Periods from the WATERS 2019 case study (in ms).
  const std::vector<Time> periods = {ms(5),  ms(10), ms(15), ms(33),
                                     ms(66), ms(100), ms(200), ms(400)};
  const Time h = hyperperiod(periods);
  for (const Time p : periods) {
    EXPECT_EQ(h % p, 0) << "H not divisible by " << format_time(p);
  }
}

TEST(Hyperperiod, SingleTask) { EXPECT_EQ(hyperperiod({ms(10)}), ms(10)); }

TEST(Hyperperiod, EmptyThrows) {
  EXPECT_THROW(hyperperiod({}), PreconditionError);
}

TEST(Hyperperiod, NonPositiveThrows) {
  EXPECT_THROW(hyperperiod({ms(10), 0}), PreconditionError);
  EXPECT_THROW(hyperperiod({ms(10), -5}), PreconditionError);
}

}  // namespace
}  // namespace letdma::support
