#include "letdma/support/math.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::support {
namespace {

TEST(Gcd64, BasicValues) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(18, 12), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(5, 0), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(Gcd64, NegativeArgumentsUseAbsoluteValue) {
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(-12, -18), 6);
}

TEST(Lcm64, BasicValues) {
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(5, 7), 35);
  EXPECT_EQ(lcm64(10, 10), 10);
  EXPECT_EQ(lcm64(0, 5), 0);
}

TEST(Lcm64, RejectsNegative) {
  EXPECT_THROW(lcm64(-2, 4), PreconditionError);
}

TEST(Lcm64, OverflowDetected) {
  const std::int64_t big = (1LL << 62);
  EXPECT_THROW(lcm64(big, big - 1), OverflowError);
}

TEST(CheckedMul, OverflowThrows) {
  EXPECT_THROW(checked_mul(1LL << 40, 1LL << 40), OverflowError);
  EXPECT_EQ(checked_mul(1LL << 30, 1LL << 30), 1LL << 60);
}

TEST(CheckedAdd, OverflowThrows) {
  const std::int64_t max = std::numeric_limits<std::int64_t>::max();
  EXPECT_THROW(checked_add(max, 1), OverflowError);
  EXPECT_EQ(checked_add(max - 1, 1), max);
}

TEST(FloorDiv, NegativeNumerator) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(-8, 2), -4);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(CeilDiv, NegativeNumerator) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(0, 5), 0);
}

TEST(FloorCeilDiv, RejectNonPositiveDivisor) {
  EXPECT_THROW(floor_div(1, 0), PreconditionError);
  EXPECT_THROW(ceil_div(1, -2), PreconditionError);
}

class DivisionIdentity : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(DivisionIdentity, FloorPlusCeilRelation) {
  const std::int64_t a = GetParam();
  for (std::int64_t b : {1, 2, 3, 5, 7, 16}) {
    EXPECT_LE(floor_div(a, b) * b, a);
    EXPECT_GE(ceil_div(a, b) * b, a);
    EXPECT_LE(ceil_div(a, b) - floor_div(a, b), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DivisionIdentity,
                         ::testing::Values(-100, -17, -1, 0, 1, 17, 100,
                                           999983));

}  // namespace
}  // namespace letdma::support
