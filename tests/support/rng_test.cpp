#include "letdma/support/rng.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::support {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(2, 1), PreconditionError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace letdma::support
