#include "letdma/support/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace letdma::support {
namespace {

JsonValue parse_ok(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_TRUE(parse_json(text, &v, &err)) << err;
  return v;
}

std::string parse_err(const std::string& text) {
  JsonValue v;
  std::string err;
  EXPECT_FALSE(parse_json(text, &v, &err)) << "unexpectedly parsed: " << text;
  return err;
}

TEST(Json, ParsesScalars) {
  EXPECT_EQ(parse_ok("null").kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("3.25").number, 3.25);
  EXPECT_DOUBLE_EQ(parse_ok("-17").number, -17.0);
  EXPECT_DOUBLE_EQ(parse_ok("6.02e23").number, 6.02e23);
  EXPECT_EQ(parse_ok("\"hi\"").text, "hi");
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\nd")").text, "a\"b\\c\nd");
  EXPECT_EQ(parse_ok(R"("tab\there")").text, "tab\there");
  // \uXXXX decodes to UTF-8; raw UTF-8 passes through untouched.
  EXPECT_EQ(parse_ok(R"("\u0041")").text, "A");
  EXPECT_EQ(parse_ok(R"("\u00e9")").text, "\xc3\xa9");
  EXPECT_EQ(parse_ok(R"("\u20ac")").text, "\xe2\x82\xac");
  EXPECT_EQ(parse_ok("\"\xc3\xa9\"").text, "\xc3\xa9");
  EXPECT_FALSE(parse_err(R"("\u00g1")").empty());
  EXPECT_FALSE(parse_err(R"("\x41")").empty());
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_ok(
      R"({"id":"r1","nums":[1,2,3],"inner":{"ok":true},"empty":[]})");
  ASSERT_EQ(v.kind, JsonValue::Kind::kObject);
  EXPECT_EQ(v.str_or("id", ""), "r1");
  const JsonValue* nums = v.find("nums");
  ASSERT_NE(nums, nullptr);
  ASSERT_EQ(nums->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(nums->array->size(), 3u);
  EXPECT_DOUBLE_EQ((*nums->array)[2].number, 3.0);
  const JsonValue* inner = v.find("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_TRUE(inner->bool_or("ok", false));
  const JsonValue* empty = v.find("empty");
  ASSERT_NE(empty, nullptr);
  EXPECT_TRUE(empty->array->empty());
}

TEST(Json, AccessorsHaveSafeFallbacks) {
  const JsonValue v = parse_ok(R"({"s":"x","n":4,"b":true})");
  EXPECT_EQ(v.str_or("missing", "fb"), "fb");
  EXPECT_EQ(v.str_or("n", "fb"), "fb");  // wrong type
  double out = -1;
  EXPECT_TRUE(v.num_of("n", &out));
  EXPECT_DOUBLE_EQ(out, 4.0);
  EXPECT_FALSE(v.num_of("s", &out));
  EXPECT_FALSE(v.num_of("missing", &out));
  EXPECT_TRUE(v.bool_or("b", false));
  EXPECT_FALSE(v.bool_or("missing", false));
  // Non-object lookups are null, not a crash.
  const JsonValue arr = parse_ok("[1]");
  EXPECT_EQ(arr.find("k"), nullptr);
  EXPECT_FALSE(arr.has("k"));
}

TEST(Json, DuplicateKeysKeepFirst) {
  const JsonValue v = parse_ok(R"({"k":"first","k":"second"})");
  EXPECT_EQ(v.str_or("k", ""), "first");
  ASSERT_EQ(v.object->size(), 2u);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_FALSE(parse_err("").empty());
  EXPECT_FALSE(parse_err("{").empty());
  EXPECT_FALSE(parse_err("[1,]").empty());
  EXPECT_FALSE(parse_err(R"({"k":})").empty());
  EXPECT_FALSE(parse_err(R"({"k" 1})").empty());
  EXPECT_FALSE(parse_err("\"unterminated").empty());
  EXPECT_FALSE(parse_err("nul").empty());
}

TEST(Json, RejectsTrailingContent) {
  EXPECT_FALSE(parse_err("{} extra").empty());
  EXPECT_FALSE(parse_err("1 2").empty());
  // Trailing whitespace alone is fine.
  parse_ok("{\"a\":1}  \n");
}

TEST(Json, ErrorNamesByteOffset) {
  const std::string err = parse_err(R"({"k": +})");
  EXPECT_NE(err.find("6"), std::string::npos) << err;
}

}  // namespace
}  // namespace letdma::support
