#include "letdma/obs/obs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "letdma/obs/sinks.hpp"

namespace letdma::obs {
namespace {

/// Records every event it sees; optionally opts into log delivery.
class CaptureSink : public Sink {
 public:
  explicit CaptureSink(bool wants_logs = false) : wants_logs_(wants_logs) {}

  void consume(const Event& event) override {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(event);
  }
  bool wants_logs() const override { return wants_logs_; }

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }
  std::size_t count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  bool wants_logs_;
};

/// Attaches a sink for the scope of a test and detaches it afterwards so
/// the process-global registry stays clean for the next test.
class ScopedSink {
 public:
  explicit ScopedSink(std::shared_ptr<Sink> sink) : sink_(std::move(sink)) {
    Registry::instance().attach(sink_);
  }
  ~ScopedSink() { Registry::instance().detach(sink_); }

 private:
  std::shared_ptr<Sink> sink_;
};

TEST(ObsRegistry, CountersAccumulateAndReset) {
  Registry& reg = Registry::instance();
  reg.reset_counters();
  reg.counter_add("test.counter.a", 3);
  reg.counter_add("test.counter.a", 4);
  reg.counter_add("test.counter.b", 1);
  EXPECT_EQ(reg.counter_value("test.counter.a"), 7);
  EXPECT_EQ(reg.counter_value("test.counter.b"), 1);
  EXPECT_EQ(reg.counter_value("test.counter.unregistered"), 0);

  bool saw_a = false;
  for (const auto& [name, value] : reg.counters()) {
    if (name == "test.counter.a") {
      saw_a = true;
      EXPECT_EQ(value, 7);
    }
  }
  EXPECT_TRUE(saw_a);

  reg.reset_counters();
  EXPECT_EQ(reg.counter_value("test.counter.a"), 0);
}

TEST(ObsRegistry, CounterClassSharesTheNamedCell) {
  Registry& reg = Registry::instance();
  reg.reset_counters();
  Counter c1("test.counter.shared");
  Counter c2("test.counter.shared");
  c1.add(5);
  c2.add(2);
  EXPECT_EQ(c1.value(), 7);
  EXPECT_EQ(reg.counter_value("test.counter.shared"), 7);
}

TEST(ObsRegistry, CountersWorkWithoutAnySink) {
  // Counters are independent of tracing: no sink, no LETDMA_OBS_ENABLED
  // requirement.
  Registry& reg = Registry::instance();
  reg.reset_counters();
  reg.counter_add("test.counter.nosink", 1);
  EXPECT_EQ(reg.counter_value("test.counter.nosink"), 1);
}

TEST(ObsRegistry, TracksAreStableByName) {
  Registry& reg = Registry::instance();
  const int a = reg.track("test.track.alpha", 7);
  const int b = reg.track("test.track.beta", 7);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.track("test.track.alpha", 7), a);
  bool found = false;
  for (const TrackInfo& t : reg.tracks()) {
    if (t.id == a) {
      found = true;
      EXPECT_EQ(t.name, "test.track.alpha");
      EXPECT_EQ(t.pid, 7);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsRegistry, AttachDetachTogglesTracingActive) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  ASSERT_FALSE(reg.tracing_active()) << "leftover sink from another test";
  auto sink = std::make_shared<CaptureSink>();
  reg.attach(sink);
  EXPECT_TRUE(reg.tracing_active());
  EXPECT_TRUE(enabled());
  reg.detach(sink);
  EXPECT_FALSE(reg.tracing_active());
  EXPECT_FALSE(enabled());
}

TEST(ObsRegistry, InstantIsDroppedWithoutSink) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  ASSERT_FALSE(reg.tracing_active());
  instant("test.orphan", "test");  // must not crash or leak anywhere
  auto sink = std::make_shared<CaptureSink>();
  ScopedSink scope(sink);
  EXPECT_EQ(sink->count(), 0u) << "pre-attach events must not be buffered";
}

TEST(ObsScopedSpan, EmitsCompleteEventWithArgs) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  auto sink = std::make_shared<CaptureSink>();
  ScopedSink scope(sink);
  {
    ScopedSpan span("test.span", "test");
    span.arg("answer", std::int64_t{42});
  }
  const auto events = sink->events();
  ASSERT_EQ(events.size(), 1u);
  const Event& e = events[0];
  EXPECT_EQ(e.phase, Phase::kComplete);
  EXPECT_EQ(e.name, "test.span");
  EXPECT_EQ(e.category, "test");
  EXPECT_GE(e.dur_us, 0.0);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].key, "answer");
  EXPECT_EQ(std::get<std::int64_t>(e.args[0].value), 42);
}

TEST(ObsScopedSpan, UnarmedWhenConstructedWithoutSink) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  ASSERT_FALSE(enabled());
  auto sink = std::make_shared<CaptureSink>();
  {
    ScopedSpan span("test.unarmed", "test");  // no sink yet: stays a no-op
    ScopedSink scope(sink);
    span.arg("ignored", true);
  }
  EXPECT_EQ(sink->count(), 0u);
}

TEST(ObsRegistry, SampleCounterEmitsCounterEvent) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  reg.reset_counters();
  reg.counter_add("test.counter.sampled", 9);
  auto sink = std::make_shared<CaptureSink>();
  ScopedSink scope(sink);
  reg.sample_counter("test.counter.sampled");
  const auto events = sink->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, Phase::kCounter);
  ASSERT_FALSE(events[0].args.empty());
  EXPECT_EQ(std::get<std::int64_t>(events[0].args[0].value), 9);
}

TEST(ObsLogging, RespectsThresholdAndSinkOptIn) {
  Registry& reg = Registry::instance();
  const Level saved = reg.log_threshold();
  reg.set_log_threshold(Level::kInfo);

  auto logs = std::make_shared<CaptureSink>(/*wants_logs=*/true);
  auto no_logs = std::make_shared<CaptureSink>(/*wants_logs=*/false);
  {
    ScopedSink s1(logs);
    ScopedSink s2(no_logs);
    log_debug("test", "below threshold");
    log_info("test", "hello");
    reg.set_log_threshold(Level::kDebug);
    log_debug("test", "now visible");
  }
  reg.set_log_threshold(saved);

  const auto events = logs->events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, Phase::kLog);
  EXPECT_EQ(events[0].level, Level::kInfo);
  ASSERT_FALSE(events[0].args.empty());
  EXPECT_EQ(std::get<std::string>(events[0].args[0].value), "hello");
  EXPECT_EQ(events[1].level, Level::kDebug);
  EXPECT_EQ(no_logs->count(), 0u) << "log events must honor wants_logs()";
}

TEST(ObsSinks, ConcurrentEmittersAreSerialized) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  reg.reset_counters();

  auto capture = std::make_shared<CaptureSink>();
  std::ostringstream jsonl;
  auto metrics = std::make_shared<JsonlMetricsSink>(jsonl);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    ScopedSink s1(capture);
    ScopedSink s2(metrics);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          instant("test.mt." + std::to_string(t), "test",
                  {{"i", std::int64_t{i}}});
          Registry::instance().counter_add("test.counter.mt", 1);
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }

  EXPECT_EQ(capture->count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(reg.counter_value("test.counter.mt"), kThreads * kPerThread);

  // Every JSONL line must be intact (starts with '{', ends with '}'):
  // torn writes would show up as malformed lines.
  std::istringstream lines(jsonl.str());
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++n;
  }
  EXPECT_EQ(n, static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(ObsSinks, ChromeTraceSinkBuffersAndSerializes) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  auto sink = std::make_shared<ChromeTraceSink>();
  {
    ScopedSink scope(sink);
    instant("test.one", "test");
    ScopedSpan span("test.two", "test");
  }
  EXPECT_EQ(sink->size(), 2u);
  std::ostringstream os;
  sink->write(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"test.one\""), std::string::npos);
  EXPECT_NE(json.find("\"test.two\""), std::string::npos);
}

}  // namespace
}  // namespace letdma::obs
