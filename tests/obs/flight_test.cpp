#include "letdma/obs/flight.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {
namespace {

Event instant(const std::string& name) {
  Event e;
  e.phase = Phase::kInstant;
  e.name = name;
  e.category = "test";
  e.ts_us = static_cast<double>(name.size());
  return e;
}

TEST(FlightRecorder, SequenceNumbersAreMonotonicFromZero) {
  FlightRecorder rec(4);
  EXPECT_EQ(rec.watermark(), 0u);
  EXPECT_EQ(rec.record(instant("a")), 0u);
  EXPECT_EQ(rec.record(instant("b")), 1u);
  EXPECT_EQ(rec.watermark(), 2u);
  const std::vector<FlightEvent> all = rec.since();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].event.name, "a");
  EXPECT_EQ(all[1].event.name, "b");
}

TEST(FlightRecorder, WraparoundKeepsTheNewestCapacityEvents) {
  FlightRecorder rec(8);
  for (int i = 0; i < 20; ++i) {
    rec.record(instant("e" + std::to_string(i)));
  }
  EXPECT_EQ(rec.watermark(), 20u);
  const std::vector<FlightEvent> kept = rec.since();
  ASSERT_EQ(kept.size(), 8u);
  // Oldest first, and exactly the last `capacity` records survive.
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].seq, 12 + i);
    EXPECT_EQ(kept[i].event.name, "e" + std::to_string(12 + i));
  }
}

TEST(FlightRecorder, SinceFiltersByWatermark) {
  FlightRecorder rec(8);
  rec.record(instant("before"));
  const std::uint64_t mark = rec.watermark();
  rec.record(instant("after1"));
  rec.record(instant("after2"));
  const std::vector<FlightEvent> tail = rec.since(mark);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].event.name, "after1");
  EXPECT_EQ(tail[1].event.name, "after2");
  // A watermark overtaken by wraparound just yields what is still there.
  for (int i = 0; i < 30; ++i) rec.record(instant("spam"));
  EXPECT_EQ(rec.since(mark).size(), 8u);
}

TEST(FlightRecorder, DumpJsonlWritesOneTaggedLinePerEvent) {
  FlightRecorder rec(8);
  Event e = instant("milp.incumbent");
  e.args.push_back({"objective", 1.5});
  rec.record(e);
  rec.record(instant("engine.guard.demote"));
  std::ostringstream out;
  EXPECT_EQ(rec.dump_jsonl(out), 2u);
  std::istringstream in(out.str());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("milp.incumbent"), std::string::npos);
  EXPECT_NE(lines[0].find("\"objective\":1.5"), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("engine.guard.demote"), std::string::npos);
}

TEST(FlightRecorder, GlobalFlightEventRecordsWithoutAnySink) {
  // The whole point of the recorder: no sink attached, still captured.
  const std::uint64_t mark = flight().watermark();
  flight_event("test.flight.nosink", "test", {{"k", std::string("v")}},
               Level::kWarn);
  const std::vector<FlightEvent> tail = flight().since(mark);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].event.name, "test.flight.nosink");
  EXPECT_EQ(tail[0].event.level, Level::kWarn);
}

}  // namespace
}  // namespace letdma::obs
