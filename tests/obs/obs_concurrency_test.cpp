// Thread-hammer tests for the always-on observability primitives. The
// suite name (ObsConcurrency) is what the TSan CI job filters on: eight
// threads record counters, histogram samples, events and flight entries
// while a JSONL sink drains concurrently, so any missing synchronization
// in the registry, the histogram cells, or the flight ring shows up as a
// data-race report there and as lost updates here.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "letdma/obs/flight.hpp"
#include "letdma/obs/histogram.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"

namespace letdma::obs {
namespace {

constexpr int kThreads = 8;
constexpr int kIterations = 500;

TEST(ObsConcurrency, CountersAndHistogramsSurviveEightWriters) {
  Registry& reg = Registry::instance();
  reg.reset_counters();
  reg.reset_histograms();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      Counter counter("test.conc.counter");
      Histogram hist("test.conc.hist");
      for (int i = 0; i < kIterations; ++i) {
        counter.add();
        hist.record(static_cast<double>(i + 1));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("test.conc.counter"), kThreads * kIterations);
  const HistogramSnapshot s =
      snapshot_of(*reg.histogram_cell("test.conc.hist"));
  EXPECT_EQ(s.count, kThreads * kIterations);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kIterations));
}

TEST(ObsConcurrency, EmittersAndFlightRecordersRaceOneDrainingSink) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  std::stringstream stream;
  auto sink = std::make_shared<JsonlMetricsSink>(stream);
  reg.attach(sink);
  const std::uint64_t mark = flight().watermark();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kIterations; ++i) {
        Event e;
        e.phase = Phase::kInstant;
        e.name = "test.conc.instant";
        e.category = "test";
        e.ts_us = Registry::instance().now_us();
        Registry::instance().emit(std::move(e));
        if (i % 16 == 0) {
          flight_event("test.conc.flight", "test",
                       {{"thread", static_cast<std::int64_t>(t)}});
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  reg.detach(sink);

  // Every line the sink wrote must be one complete JSON object — torn or
  // interleaved writes would break the brace discipline.
  std::string line;
  int lines = 0;
  while (std::getline(stream, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    ++lines;
  }
  // All instants plus all mirrored flight events reached the sink.
  constexpr int kFlightPerThread = (kIterations + 15) / 16;
  EXPECT_GE(lines, kThreads * (kIterations + kFlightPerThread));
  // The flight ring assigned every racing event a unique sequence number.
  EXPECT_EQ(flight().watermark() - mark,
            static_cast<std::uint64_t>(kThreads * kFlightPerThread));
}

TEST(ObsConcurrency, FlushSinksIsSafeWhileEmitting) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  Registry& reg = Registry::instance();
  std::stringstream stream;
  auto sink = std::make_shared<JsonlMetricsSink>(stream);
  reg.attach(sink);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads / 2; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        Event e;
        e.phase = Phase::kInstant;
        e.name = "test.conc.flush";
        e.category = "test";
        e.ts_us = Registry::instance().now_us();
        Registry::instance().emit(std::move(e));
      }
    });
  }
  // flush_sinks() must not deadlock against emitters (it flushes outside
  // the registry lock — the atexit handler runs through this exact path).
  for (int i = 0; i < 50; ++i) reg.flush_sinks();
  for (std::thread& t : threads) t.join();
  reg.flush_sinks();
  reg.detach(sink);
}

}  // namespace
}  // namespace letdma::obs
