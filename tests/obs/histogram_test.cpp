#include "letdma/obs/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "letdma/obs/obs.hpp"

namespace letdma::obs {
namespace {

// Bucket-midpoint reconstruction is exact to within one bucket's width:
// with 4 sub-buckets per octave that is a 2^(1/4) ~ 19% relative band.
constexpr double kBucketTolerance = 0.20;

void expect_within_bucket(double reported, double exact) {
  EXPECT_GE(reported, exact * (1.0 - kBucketTolerance))
      << "reported " << reported << " for exact " << exact;
  EXPECT_LE(reported, exact * (1.0 + kBucketTolerance))
      << "reported " << reported << " for exact " << exact;
}

TEST(Histogram, CountSumMaxAreExact) {
  Histogram h("test.hist.exact");
  Registry::instance().reset_histograms();
  h.record(1.0);
  h.record(10.0);
  h.record(100.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 111.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 37.0);
}

TEST(Histogram, PercentilesTrackTheDistribution) {
  Histogram h("test.hist.percentiles");
  Registry::instance().reset_histograms();
  // 1..1000: p50 ~ 500, p90 ~ 900, p99 ~ 990.
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000);
  expect_within_bucket(s.p50, 500.0);
  expect_within_bucket(s.p90, 900.0);
  expect_within_bucket(s.p99, 990.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  // Percentiles never report beyond the exactly-tracked max.
  EXPECT_LE(s.p99, s.max);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
}

TEST(Histogram, SingleSampleStaysWithinItsBucket) {
  Histogram h("test.hist.single");
  Registry::instance().reset_histograms();
  h.record(42.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  expect_within_bucket(s.p50, 42.0);
  expect_within_bucket(s.p99, 42.0);
  EXPECT_LE(s.p99, s.max);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
}

TEST(Histogram, PowerOfTwoSampleClampsToTheExactMax) {
  Histogram h("test.hist.pow2");
  Registry::instance().reset_histograms();
  // A value on a bucket's lower edge has a midpoint above it, so the
  // max clamp kicks in and the percentile is exact.
  h.record(32.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.p50, 32.0);
  EXPECT_DOUBLE_EQ(s.p99, 32.0);
}

TEST(Histogram, NonPositiveValuesLandInTheZeroBucket) {
  Histogram h("test.hist.zero");
  Registry::instance().reset_histograms();
  h.record(0.0);
  h.record(-5.0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2);
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_GE(s.p50, 0.0);
}

TEST(Histogram, ResetClearsEverything) {
  Histogram h("test.hist.reset");
  h.record(7.0);
  EXPECT_GT(h.snapshot().count, 0);
  Registry::instance().reset_histograms();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(Histogram, SameNameSharesTheCell) {
  Histogram a("test.hist.shared");
  Histogram b("test.hist.shared");
  Registry::instance().reset_histograms();
  a.record(1.0);
  b.record(2.0);
  EXPECT_EQ(a.snapshot().count, 2);
  EXPECT_EQ(b.snapshot().count, 2);
}

TEST(Histogram, RegistryEnumeratesNamesSorted) {
  Histogram b("test.hist.names.b");
  Histogram a("test.hist.names.a");
  const std::vector<std::string> names =
      Registry::instance().histogram_names();
  const auto pos_a = std::find(names.begin(), names.end(),
                               "test.hist.names.a");
  const auto pos_b = std::find(names.begin(), names.end(),
                               "test.hist.names.b");
  ASSERT_NE(pos_a, names.end());
  ASSERT_NE(pos_b, names.end());
  EXPECT_LT(pos_a - names.begin(), pos_b - names.begin());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Histogram, ScopedLatencyRecordsOneSample) {
  Histogram h("test.hist.scoped");
  Registry::instance().reset_histograms();
  { ScopedLatency t(h); }
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.max, 0.0);
}

TEST(Histogram, ExtremeValuesClampToEdgeBuckets) {
  Histogram h("test.hist.extreme");
  Registry::instance().reset_histograms();
  h.record(1e300);
  h.record(1e-300);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.max, 1e300);
  // The reconstruction stays finite even though the value overflowed the
  // bucket range (it is clamped to max, which is tracked exactly).
  EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace letdma::obs
