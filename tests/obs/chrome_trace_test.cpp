// End-to-end checks of the Chrome trace-event export: the JSON must
// parse, and the tracks/events a Perfetto user relies on must be present
// for (a) a simulated WATERS schedule and (b) a MILP solve.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "letdma/let/greedy.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/obs/sinks.hpp"
#include "letdma/sim/simulator.hpp"
#include "letdma/sim/trace_export.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma {
namespace {

// --- minimal JSON parser (enough for trace-event files) --------------------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return '\0';
    }
    return text_[pos_];
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return v;
    }
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      v.kind = JsonValue::kString;
      v.str = string();
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    // number
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("unexpected character");
      return v;
    }
    v.kind = JsonValue::kNumber;
    v.number = std::atof(text_.substr(start, pos_ - start).c_str());
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u':
            out.push_back('?');  // escaped control char; value irrelevant here
            pos_ += 4;
            break;
          default: out.push_back(esc); break;
        }
      } else {
        out.push_back(c);
      }
    }
    expect('"');
    return out;
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    expect('{');
    if (consume('}')) return v;
    do {
      skip_ws();
      std::string key = string();
      expect(':');
      v.object.emplace(std::move(key), value());
    } while (consume(','));
    expect('}');
    return v;
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    expect('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(value());
    } while (consume(','));
    expect(']');
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

JsonValue parse_trace_or_die(const std::string& json) {
  JsonParser parser(json);
  JsonValue root = parser.parse();
  EXPECT_TRUE(parser.ok()) << parser.error();
  EXPECT_EQ(root.kind, JsonValue::kObject);
  return root;
}

TEST(ChromeTrace, WatersSimulationHasPerCoreAndDmaTracks) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  const auto app = waters::make_waters_app();
  let::LetComms comms(*app);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_transfer_count(comms);
  sim::ProtocolSimulator simulator(comms, &schedule.schedule, {});
  const std::string json = sim::chrome_trace_json(*app, simulator.run());

  const JsonValue root = parse_trace_or_die(json);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_FALSE(events->array.empty());

  // Track metadata: one thread per core plus the DMA engine, all in the
  // simulation process.
  std::set<std::string> names;
  int sim_pid = -1;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    if (ph == nullptr || name == nullptr || ph->str != "M") continue;
    if (name->str == "thread_name") {
      names.insert(e.find("args")->find("name")->str);
      sim_pid = static_cast<int>(e.find("pid")->number);
    }
  }
  const int cores = app->platform().num_cores();
  for (int c = 0; c < cores; ++c) {
    EXPECT_TRUE(names.count("P" + std::to_string(c + 1)))
        << "missing per-core track P" << (c + 1);
  }
  EXPECT_TRUE(names.count("DMA"));

  // Slices: every category must be represented and every slice must carry
  // the complete-event fields Perfetto needs.
  std::map<std::string, int> by_cat;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->str != "X") continue;
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("dur"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_GE(e.find("dur")->number, 0.0);
    EXPECT_EQ(static_cast<int>(e.find("pid")->number), sim_pid);
    by_cat[e.find("cat")->str]++;
  }
  EXPECT_GT(by_cat["sim.exec"], 0);
  EXPECT_GT(by_cat["sim.let"], 0);
  EXPECT_GT(by_cat["sim.dma"], 0);
}

TEST(ChromeTrace, MilpSolveEmitsPhaseSpansAndIncumbents) {
  if (!LETDMA_OBS_ENABLED) GTEST_SKIP() << "tracing compiled out";
  auto sink = std::make_shared<obs::ChromeTraceSink>();
  obs::Registry::instance().attach(sink);

  const auto app = waters::make_waters_app();
  let::LetComms comms(*app);
  let::MilpSchedulerOptions opt;
  opt.objective = let::MilpObjective::kMinTransfers;
  opt.solver.time_limit_sec = 5.0;
  const auto r = let::MilpScheduler(comms, opt).solve();
  obs::Registry::instance().detach(sink);
  ASSERT_TRUE(r.feasible());

  std::ostringstream os;
  sink->write(os);
  const JsonValue root = parse_trace_or_die(os.str());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::set<std::string> spans;
  int incumbents = 0;
  for (const JsonValue& e : events->array) {
    const JsonValue* ph = e.find("ph");
    const JsonValue* name = e.find("name");
    if (ph == nullptr || name == nullptr) continue;
    if (ph->str == "X") spans.insert(name->str);
    if (ph->str == "i" && name->str == "milp.incumbent") ++incumbents;
  }
  EXPECT_TRUE(spans.count("let.milp.build"));
  EXPECT_TRUE(spans.count("milp.solve"));
  EXPECT_TRUE(spans.count("let.milp.extract"));
  EXPECT_GE(incumbents, 1) << "warm start must record an incumbent event";
}

}  // namespace
}  // namespace letdma
