#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "../test_fixtures.hpp"
#include "letdma/model/diff.hpp"
#include "letdma/model/io.hpp"
#include "letdma/serve/service.hpp"

namespace letdma::serve {
namespace {

using model::CoreId;
using model::TaskId;
using support::ms;

ServiceOptions fast_options() {
  ServiceOptions options;
  // Cheap chain: these tests exercise the near-miss path, not the MILP.
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

/// Fig.1 system with lB's size as a knob: a one-label diff away from the
/// fixture, well inside the default near-miss threshold.
std::unique_ptr<model::Application> make_variant(std::int64_t lb_bytes) {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const TaskId t1 = app->add_task("tau1", ms(10), ms(2), CoreId{0});
  const TaskId t3 = app->add_task("tau3", ms(20), ms(4), CoreId{0});
  const TaskId t5 = app->add_task("tau5", ms(40), ms(8), CoreId{0});
  const TaskId t2 = app->add_task("tau2", ms(5), ms(1), CoreId{1});
  const TaskId t4 = app->add_task("tau4", ms(20), ms(4), CoreId{1});
  const TaskId t6 = app->add_task("tau6", ms(40), ms(8), CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", lb_bytes, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

Request request_for(const model::Application& app, std::string id) {
  Request req;
  req.id = std::move(id);
  req.model_text = model::write_application(app);
  req.budget_sec = 2.0;
  return req;
}

TEST(NearMiss, WarmStartsFromTheStructurallyClosestEntry) {
  Service service(fast_options());
  const auto base = make_variant(4000);
  const Response seed = service.handle(request_for(*base, "seed"));
  ASSERT_TRUE(seed.ok) << seed.error;
  ASSERT_FALSE(seed.cache_hit);
  EXPECT_FALSE(seed.near_miss);

  // One label resized: a fingerprint miss, but structurally close.
  const auto changed = make_variant(9000);
  const Response near = service.handle(request_for(*changed, "near"));
  ASSERT_TRUE(near.ok) << near.error;
  EXPECT_FALSE(near.cache_hit);
  EXPECT_TRUE(near.near_miss);
  EXPECT_TRUE(near.certified);
  EXPECT_NE(near.fingerprint, seed.fingerprint);
  EXPECT_FALSE(near.schedule_text.empty());

  // The repaired result was cached under its own fingerprint: the same
  // instance again is now an exact hit, not a near miss.
  const Response again = service.handle(request_for(*changed, "again"));
  ASSERT_TRUE(again.ok) << again.error;
  EXPECT_TRUE(again.cache_hit);
  EXPECT_FALSE(again.near_miss);
}

TEST(NearMiss, ZeroThresholdDisablesTheScan) {
  ServiceOptions options = fast_options();
  options.nearmiss_max_distance = 0.0;
  Service service(options);
  const auto base = make_variant(4000);
  ASSERT_TRUE(service.handle(request_for(*base, "seed")).ok);
  const auto changed = make_variant(9000);
  const Response miss = service.handle(request_for(*changed, "miss"));
  ASSERT_TRUE(miss.ok) << miss.error;
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_FALSE(miss.near_miss);
  EXPECT_TRUE(miss.certified);
}

TEST(NearMiss, DistantInstanceIsSolvedCold) {
  Service service(fast_options());
  const auto base = make_variant(4000);
  ASSERT_TRUE(service.handle(request_for(*base, "seed")).ok);
  // A structurally unrelated system: outside the distance threshold.
  const auto other = testing::make_multireader_app();
  ASSERT_GT(model::structural_distance(*base, *other),
            fast_options().nearmiss_max_distance);
  const Response cold = service.handle(request_for(*other, "cold"));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_FALSE(cold.near_miss);
  EXPECT_TRUE(cold.certified);
}

TEST(NearMiss, ObjectiveMismatchedEntriesAreSkipped) {
  Service service(fast_options());
  const auto base = make_variant(4000);
  Request seed = request_for(*base, "seed");
  seed.objective = engine::Objective::kMinTransfers;
  ASSERT_TRUE(service.handle(seed).ok);
  // Same neighbourhood, different objective: the cached dmat schedule must
  // not warm-start a del solve.
  const auto changed = make_variant(9000);
  Request req = request_for(*changed, "del");
  req.objective = engine::Objective::kMinMaxLatencyRatio;
  const Response res = service.handle(req);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.near_miss);
  EXPECT_TRUE(res.certified);
}

TEST(NearMiss, RepairedNearMissMatchesAColdSolveQuality) {
  // The near-miss response must be as good as solving the changed instance
  // from scratch with the same chain/budget.
  Service warm_service(fast_options());
  const auto base = make_variant(4000);
  ASSERT_TRUE(warm_service.handle(request_for(*base, "seed")).ok);
  const auto changed = make_variant(9000);
  const Response near = warm_service.handle(request_for(*changed, "near"));
  ASSERT_TRUE(near.ok) << near.error;
  ASSERT_TRUE(near.near_miss);

  Service cold_service(fast_options());
  const Response cold = cold_service.handle(request_for(*changed, "cold"));
  ASSERT_TRUE(cold.ok) << cold.error;
  EXPECT_LE(near.objective_value, cold.objective_value + 1e-9);
}

}  // namespace
}  // namespace letdma::serve
