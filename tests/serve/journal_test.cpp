// serve::Journal — framing, CRC integrity, torn-tail tolerance and
// crash-atomic compaction. The property test simulates a crash at every
// byte offset of a multi-record journal: the intact prefix must always be
// recovered and the torn tail silently dropped, never a throw or a
// corrupted record admitted.
#include "letdma/serve/journal.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "letdma/guard/faults.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

std::string test_journal_path(const char* tag) {
  return "/tmp/letdma-journal-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".wal";
}

/// RAII cleanup so failed tests do not leave journals in /tmp.
class JournalFile {
 public:
  explicit JournalFile(const char* tag) : path_(test_journal_path(tag)) {
    std::remove(path_.c_str());
  }
  ~JournalFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

JournalRecord make_record(int i) {
  JournalRecord rec;
  // Embedded newlines everywhere a serialization would have them: the
  // length-prefixed framing must not care.
  rec.canonical_text =
      "platform cores=2\ntask T" + std::to_string(i) + " period=10\n";
  rec.schedule_text = "s0 slot=" + std::to_string(i) + "\nschedule done\n";
  rec.strategy = i % 2 == 0 ? "milp" : "ls";
  rec.objective = i % 2 == 0 ? engine::Objective::kMinMaxLatencyRatio
                             : engine::Objective::kMinTransfers;
  rec.status = engine::Status::kFeasible;
  rec.objective_value = 0.125 * static_cast<double>(i);
  return rec;
}

TEST(JournalCodec, Crc32MatchesTheIeeeCheckValue) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(JournalCodec, RecordRoundTripsWithEmbeddedNewlines) {
  const JournalRecord rec = make_record(3);
  const std::string framed = encode_record(rec);

  std::vector<JournalRecord> out;
  JournalStats stats;
  const std::size_t consumed = decode_buffer(framed, &out, &stats);
  EXPECT_EQ(consumed, framed.size());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].canonical_text, rec.canonical_text);
  EXPECT_EQ(out[0].schedule_text, rec.schedule_text);
  EXPECT_EQ(out[0].strategy, rec.strategy);
  EXPECT_EQ(out[0].objective, rec.objective);
  EXPECT_EQ(out[0].status, rec.status);
  EXPECT_DOUBLE_EQ(out[0].objective_value, rec.objective_value);
  EXPECT_EQ(stats.dropped_corrupt, 0);
}

TEST(JournalCodec, EveryByteOffsetTruncationRecoversTheIntactPrefix) {
  // 100 records, then a crash at every possible byte offset: decode must
  // recover exactly the records whose framing fits and stop at the torn
  // tail — without ever throwing or fabricating a record.
  std::vector<JournalRecord> records;
  std::string buffer;
  std::vector<std::size_t> ends;  // buffer offset where record i ends
  std::mt19937 rng(7);
  for (int i = 0; i < 100; ++i) {
    JournalRecord rec = make_record(i);
    // Vary the payload sizes so truncation lands in every field.
    rec.canonical_text.append(rng() % 17, '\n');
    rec.schedule_text.append(rng() % 13, 'x');
    records.push_back(rec);
    buffer += encode_record(rec);
    ends.push_back(buffer.size());
  }

  for (std::size_t cut = 0; cut <= buffer.size(); ++cut) {
    const std::string_view torn(buffer.data(), cut);
    std::vector<JournalRecord> out;
    JournalStats stats;
    const std::size_t consumed = decode_buffer(torn, &out, &stats);

    std::size_t intact = 0;
    while (intact < ends.size() && ends[intact] <= cut) ++intact;
    ASSERT_EQ(out.size(), intact) << "cut at byte " << cut;
    ASSERT_EQ(consumed, intact == 0 ? 0 : ends[intact - 1])
        << "cut at byte " << cut;
    EXPECT_EQ(stats.dropped_corrupt, 0) << "cut at byte " << cut;
    if (!out.empty()) {
      EXPECT_EQ(out.back().canonical_text,
                records[intact - 1].canonical_text);
    }
  }
}

TEST(JournalCodec, CrcMismatchSkipsOneRecordAndContinues) {
  const JournalRecord a = make_record(1), b = make_record(2),
                      c = make_record(3);
  std::string buffer = encode_record(a);
  std::string middle = encode_record(b);
  // Flip one payload byte (framing intact, CRC now wrong): the scan must
  // drop record b alone and still deliver c.
  middle[middle.size() / 2] ^= 0x01;
  buffer += middle;
  buffer += encode_record(c);

  std::vector<JournalRecord> out;
  JournalStats stats;
  const std::size_t consumed = decode_buffer(buffer, &out, &stats);
  EXPECT_EQ(consumed, buffer.size());
  EXPECT_EQ(stats.dropped_corrupt, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].canonical_text, a.canonical_text);
  EXPECT_EQ(out[1].canonical_text, c.canonical_text);
}

TEST(JournalCodec, GarbagePrefixStopsTheScan) {
  std::vector<JournalRecord> out;
  JournalStats stats;
  EXPECT_EQ(decode_buffer("this is not a journal", &out, &stats), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(JournalFileOps, AppendLoadCompactRoundTrip) {
  JournalFile file("roundtrip");
  {
    Journal journal(file.path());
    for (int i = 0; i < 5; ++i) journal.append(make_record(i));
    EXPECT_EQ(journal.appends_since_compact(), 5);
  }
  Journal reopened(file.path());
  JournalStats stats;
  std::vector<JournalRecord> loaded = reopened.load(&stats);
  ASSERT_EQ(loaded.size(), 5u);
  EXPECT_EQ(loaded[4].canonical_text, make_record(4).canonical_text);

  // Compaction replaces the file with exactly the survivors.
  loaded.resize(2);
  reopened.compact(loaded);
  EXPECT_EQ(reopened.appends_since_compact(), 0);
  JournalStats stats2;
  const std::vector<JournalRecord> after = reopened.load(&stats2);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1].canonical_text, make_record(1).canonical_text);
}

TEST(JournalFileOps, LoadToleratesATornTailOnDisk) {
  JournalFile file("torn");
  {
    Journal journal(file.path());
    journal.append(make_record(0));
    journal.append(make_record(1));
  }
  // Simulate a crash mid-write: append half of a third record by hand.
  const std::string half =
      encode_record(make_record(2)).substr(0, 10);
  {
    std::FILE* f = std::fopen(file.path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(half.data(), 1, half.size(), f);
    std::fclose(f);
  }
  Journal journal(file.path());
  JournalStats stats;
  const std::vector<JournalRecord> loaded = journal.load(&stats);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(stats.torn_bytes, static_cast<std::int64_t>(half.size()));
}

class JournalFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { guard::disarm(); }
  void TearDown() override { guard::disarm(); }
};

TEST_F(JournalFaultTest, InjectedTornWriteLosesOnlyTheLastRecord) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  JournalFile file("fault-torn");
  {
    Journal journal(file.path());
    journal.append(make_record(0));
    guard::arm(guard::FaultPlan::parse("seed=1,io.journal.torn_write=truncate"));
    journal.append(make_record(1));  // written torn
    guard::disarm();
  }
  Journal journal(file.path());
  JournalStats stats;
  const std::vector<JournalRecord> loaded = journal.load(&stats);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].canonical_text, make_record(0).canonical_text);
  EXPECT_GT(stats.torn_bytes, 0);
}

TEST_F(JournalFaultTest, InjectedCrcCorruptionDropsOnlyTheBadRecord) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  JournalFile file("fault-crc");
  {
    Journal journal(file.path());
    journal.append(make_record(0));
    guard::arm(guard::FaultPlan::parse("seed=1,io.journal.crc=corrupt"));
    journal.append(make_record(1));  // payload byte flipped after CRC
    guard::disarm();
    journal.append(make_record(2));
  }
  Journal journal(file.path());
  JournalStats stats;
  const std::vector<JournalRecord> loaded = journal.load(&stats);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(stats.dropped_corrupt, 1);
  EXPECT_EQ(loaded[0].canonical_text, make_record(0).canonical_text);
  EXPECT_EQ(loaded[1].canonical_text, make_record(2).canonical_text);
}

}  // namespace
}  // namespace letdma::serve
