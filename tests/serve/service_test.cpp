#include "letdma/serve/service.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/guard/certify.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/io.hpp"

namespace letdma::serve {
namespace {

ServiceOptions fast_options() {
  ServiceOptions options;
  // Cheap chain: these tests exercise the serving layer, not the MILP.
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

Request request_for(const model::Application& app, std::string id) {
  Request req;
  req.id = std::move(id);
  req.model_text = model::write_application(app);
  req.budget_sec = 2.0;
  return req;
}

TEST(Service, FreshSolveIsCertifiedAndCached) {
  Service service(fast_options());
  const auto app = testing::make_fig1_app();
  const Response first = service.handle(request_for(*app, "r1"));
  EXPECT_TRUE(first.ok) << first.error;
  EXPECT_TRUE(first.certified);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.exact);
  EXPECT_EQ(first.fingerprint.size(), 32u);
  EXPECT_FALSE(first.schedule_text.empty());

  const Response second = service.handle(request_for(*app, "r2"));
  EXPECT_TRUE(second.ok) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_TRUE(second.certified);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_DOUBLE_EQ(second.objective_value, first.objective_value);
}

TEST(Service, PermutedInstanceHitsAndCertifiesOnItsOwnFrame) {
  Service service(fast_options());
  const auto app = testing::make_fig1_app();
  const Response base = service.handle(request_for(*app, "base"));
  ASSERT_TRUE(base.ok) << base.error;

  // Same structure, different task/label order, names and core numbering.
  const auto shuffled = model::permute_application(
      *app, {3, 0, 5, 1, 4, 2}, {2, 4, 0, 5, 1, 3}, {1, 0});
  const Response hit = service.handle(request_for(*shuffled, "dup"));
  EXPECT_TRUE(hit.ok) << hit.error;
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_TRUE(hit.certified);
  EXPECT_EQ(hit.fingerprint, base.fingerprint);

  // The returned schedule is expressed in the REQUESTING instance's
  // names/cores: it must parse and certify against that instance.
  const auto parsed_app = model::read_application(
      model::write_application(*shuffled));
  const let::LetComms comms(*parsed_app);
  const let::ScheduleResult schedule =
      let::read_schedule(comms, hit.schedule_text);
  EXPECT_TRUE(guard::certify(comms, schedule).certified());
}

TEST(Service, MutatedInstanceMissesTheCache) {
  Service service(fast_options());
  const auto app = testing::make_fig1_app();
  const Response base = service.handle(request_for(*app, "base"));
  ASSERT_TRUE(base.ok) << base.error;

  auto mutated = std::make_unique<model::Application>(app->platform());
  std::vector<model::TaskId> ids;
  for (int i = 0; i < app->num_tasks(); ++i) {
    const model::Task& t = app->task(model::TaskId{i});
    ids.push_back(mutated->add_task(t.name, t.period, t.wcet, t.core,
                                    t.priority));
  }
  for (int l = 0; l < app->num_labels(); ++l) {
    const model::Label& lab = app->label(model::LabelId{l});
    std::vector<model::TaskId> readers;
    for (const model::TaskId r : lab.readers) {
      readers.push_back(ids[static_cast<std::size_t>(r.value)]);
    }
    mutated->add_label(lab.name, lab.size_bytes + (l == 0 ? 8 : 0),
                       ids[static_cast<std::size_t>(lab.writer.value)],
                       std::move(readers));
  }
  mutated->finalize();

  const Response miss = service.handle(request_for(*mutated, "mut"));
  EXPECT_TRUE(miss.ok) << miss.error;
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_NE(miss.fingerprint, base.fingerprint);
}

TEST(Service, ObjectiveIsPartOfTheCacheKey) {
  Service service(fast_options());
  const auto app = testing::make_fig1_app();
  Request del = request_for(*app, "del");
  del.objective = engine::Objective::kMinMaxLatencyRatio;
  ASSERT_TRUE(service.handle(del).ok);

  Request dmat = request_for(*app, "dmat");
  dmat.objective = engine::Objective::kMinTransfers;
  const Response res = service.handle(dmat);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.cache_hit);

  const Response again = service.handle(dmat);
  EXPECT_TRUE(again.cache_hit);
}

TEST(Service, MalformedModelIsAnErrorNotACrash) {
  Service service(fast_options());
  Request req;
  req.id = "bad";
  req.model_text = "task name=orphan period_ns=10\n";
  const Response res = service.handle(req);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.certified);
  EXPECT_FALSE(res.error.empty());
}

TEST(Service, AdmissionRejectsOverInflightBudget) {
  ServiceOptions options = fast_options();
  TenantPolicy throttled;
  throttled.max_inflight = 0;
  options.tenant_policies["noisy"] = throttled;
  Service service(options);

  const auto app = testing::make_pair_app();
  Request req = request_for(*app, "r");
  req.tenant = "noisy";
  const Response res = service.handle(req);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("admission"), std::string::npos) << res.error;

  // Other tenants are unaffected.
  req.tenant = "quiet";
  EXPECT_TRUE(service.handle(req).ok);
}

TEST(Service, StreamedIncumbentsMatchTheReportedCount) {
  Service service(fast_options());
  const auto app = testing::make_fig1_app();
  Request req = request_for(*app, "s");
  req.stream_incumbents = true;
  std::vector<IncumbentUpdate> updates;
  const Response res = service.handle(
      req, [&updates](const IncumbentUpdate& u) { updates.push_back(u); });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(static_cast<int>(updates.size()), res.incumbents);
  for (const IncumbentUpdate& u : updates) {
    EXPECT_FALSE(u.strategy.empty());
  }
}

TEST(Service, WantScheduleFalseOmitsTheScheduleText) {
  Service service(fast_options());
  const auto app = testing::make_pair_app();
  Request req = request_for(*app, "lean");
  req.want_schedule = false;
  const Response res = service.handle(req);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  EXPECT_TRUE(res.schedule_text.empty());
}

TEST(Service, BudgetIsClampedToTheTenantPolicy) {
  ServiceOptions options = fast_options();
  options.default_policy.max_budget_sec = 0.5;
  Service service(options);
  const auto app = testing::make_pair_app();
  Request req = request_for(*app, "clamped");
  req.budget_sec = 3600.0;  // absurd ask; policy caps it
  const Response res = service.handle(req);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  EXPECT_LT(res.wall_ms, 3000.0);
}

}  // namespace
}  // namespace letdma::serve
