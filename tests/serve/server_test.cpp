#include "letdma/serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

ServiceOptions fast_options() {
  ServiceOptions options;
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

std::string test_socket(const char* tag) {
  return "/tmp/letdma-serve-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

Request request_for(const model::Application& app, std::string id) {
  Request req;
  req.id = std::move(id);
  req.model_text = model::write_application(app);
  req.budget_sec = 2.0;
  req.want_schedule = false;
  return req;
}

TEST(Protocol, RequestLineRoundTrips) {
  const auto app = testing::make_pair_app();
  Request req = request_for(*app, "req-7");
  req.tenant = "acme";
  req.objective = engine::Objective::kMinTransfers;
  req.budget_sec = 0.25;
  req.want_schedule = true;
  req.stream_incumbents = true;

  const Request parsed = parse_request_line(render_request_line(req));
  EXPECT_EQ(parsed.id, req.id);
  EXPECT_EQ(parsed.tenant, req.tenant);
  EXPECT_EQ(parsed.objective, req.objective);
  EXPECT_DOUBLE_EQ(parsed.budget_sec, req.budget_sec);
  EXPECT_EQ(parsed.want_schedule, req.want_schedule);
  EXPECT_EQ(parsed.stream_incumbents, req.stream_incumbents);
  EXPECT_EQ(parsed.model_text, req.model_text);
}

TEST(Protocol, ResponseLineRoundTrips) {
  Response res;
  res.id = "req-7";
  res.ok = true;
  res.status = engine::Status::kFeasible;
  res.certified = true;
  res.cache_hit = true;
  res.fingerprint = "00ff00ff00ff00ff00ff00ff00ff00ff";
  res.exact = true;
  res.objective_value = 0.375;
  res.strategy = "ls";
  res.wall_ms = 1.25;
  res.incumbents = 3;
  res.schedule_text = "s0 ...\nschedule ...\n";

  const Response parsed = parse_response_line(render_response_line(res));
  EXPECT_EQ(parsed.id, res.id);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.status, res.status);
  EXPECT_TRUE(parsed.certified);
  EXPECT_TRUE(parsed.cache_hit);
  EXPECT_EQ(parsed.fingerprint, res.fingerprint);
  EXPECT_DOUBLE_EQ(parsed.objective_value, res.objective_value);
  EXPECT_EQ(parsed.strategy, res.strategy);
  EXPECT_EQ(parsed.incumbents, res.incumbents);
  EXPECT_EQ(parsed.schedule_text, res.schedule_text);
}

TEST(Protocol, MalformedRequestLineThrows) {
  EXPECT_THROW(parse_request_line("not json\n"), support::Error);
  EXPECT_THROW(parse_request_line(R"({"id":"x","objective":"bogus"})"),
               support::Error);
}

TEST(Server, SingleCallOverTheSocket) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("single");
  options.threads = 2;
  Server server(service, options);
  server.start();
  EXPECT_TRUE(server.running());

  const auto app = testing::make_fig1_app();
  Client client(options.socket_path);
  const Response res = client.call(request_for(*app, "one"));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  EXPECT_EQ(res.id, "one");

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, PipelinedBatchKeepsOrderAndHitsTheCache) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("batch");
  options.threads = 2;
  Server server(service, options);
  server.start();

  const auto app = testing::make_fig1_app();
  // Seed the cache through the wire, then pipeline permuted duplicates.
  {
    Client warm(options.socket_path);
    ASSERT_TRUE(warm.call(request_for(*app, "warm")).ok);
  }
  std::vector<Request> batch;
  batch.push_back(request_for(*app, "b0"));
  batch.push_back(request_for(
      *model::permute_application(*app, {1, 0, 2, 3, 4, 5}), "b1"));
  batch.push_back(request_for(
      *model::permute_application(*app, {}, {}, {1, 0}), "b2"));
  batch.push_back(request_for(*app, "b3"));

  Client client(options.socket_path);
  const std::vector<Response> responses = client.call_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, batch[i].id);
    EXPECT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_TRUE(responses[i].certified);
    EXPECT_TRUE(responses[i].cache_hit) << responses[i].id;
  }
  server.stop();
}

TEST(Server, StreamingCallDeliversIncumbentEvents) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("stream");
  Server server(service, options);
  server.start();

  const auto app = testing::make_fig1_app();
  Request req = request_for(*app, "s");
  req.stream_incumbents = true;
  std::vector<IncumbentUpdate> updates;
  Client client(options.socket_path);
  const Response res = client.call(
      req, [&updates](const IncumbentUpdate& u) { updates.push_back(u); });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(static_cast<int>(updates.size()), res.incumbents);
  server.stop();
}

TEST(Server, StartStopCyclesDoNotLeakSocketsOrThreads) {
  Service service(fast_options());
  const auto app = testing::make_pair_app();
  ServerOptions options;
  options.socket_path = test_socket("cycle");
  for (int round = 0; round < 3; ++round) {
    Server server(service, options);
    server.start();
    Client client(options.socket_path);
    EXPECT_TRUE(client.call(request_for(*app, "r")).ok);
    server.stop();
    server.stop();  // idempotent
    EXPECT_THROW(Client dead(options.socket_path), support::Error);
  }
}

TEST(Server, MalformedLineGetsAnErrorResponse) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("bad");
  Server server(service, options);
  server.start();

  // Speak the raw protocol: a junk line must produce an error result,
  // not a dropped connection or a crash.
  Client client(options.socket_path);
  Request bad;
  bad.id = "junk";
  bad.model_text = "this is not a model";
  const Response res = client.call(bad);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
  server.stop();
}

// --- robustness: timeouts, shedding, drain, reconnect -----------------

/// Raw AF_UNIX connect for tests that must speak (or refuse to speak) the
/// protocol below the Client abstraction. Returns the fd or -1.
int raw_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads until EOF (the server closed) and returns everything received.
std::string read_to_eof(int fd) {
  std::string out;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

TEST(Server, HealthAndStatsAnswerOverTheWire) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("health");
  Server server(service, options);
  server.start();

  Client client(options.socket_path);
  bool draining = true;
  EXPECT_TRUE(client.health(&draining));
  EXPECT_FALSE(draining);

  const auto app = testing::make_pair_app();
  ASSERT_TRUE(client.call(request_for(*app, "one")).ok);
  const ServerStatsReply stats = client.stats();
  EXPECT_TRUE(stats.ok);
  EXPECT_FALSE(stats.draining);
  EXPECT_GE(stats.requests, 1);
  EXPECT_GE(stats.certified, 1);
  EXPECT_EQ(stats.journal_recovered, 0);  // no journal configured
  server.stop();
}

TEST(Server, StalledClientTimesOutWithoutBlockingOthers) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("stall");
  options.read_timeout_sec = 0.3;
  Server server(service, options);
  server.start();

  // The staller sends half a line and goes silent.
  const int staller = raw_connect(options.socket_path);
  ASSERT_GE(staller, 0);
  const char partial[] = "{\"id\":\"never";
  ASSERT_EQ(::write(staller, partial, sizeof(partial) - 1),
            static_cast<ssize_t>(sizeof(partial) - 1));

  // A well-behaved client on another connection is not blocked by it.
  const auto app = testing::make_pair_app();
  Client client(options.socket_path);
  EXPECT_TRUE(client.call(request_for(*app, "fine")).ok);

  // The staller is told why and disconnected, instead of pinning a
  // connection thread forever.
  const std::string farewell = read_to_eof(staller);
  EXPECT_NE(farewell.find("read timeout"), std::string::npos) << farewell;
  ::close(staller);
  server.stop();
}

TEST(Server, ConnectionLimitShedsWithAnExplicitError) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("shed");
  options.max_connections = 1;
  Server server(service, options);
  server.start();

  const auto app = testing::make_pair_app();
  Client first(options.socket_path);
  ASSERT_TRUE(first.call(request_for(*app, "ok")).ok);  // conn registered

  const int second = raw_connect(options.socket_path);
  ASSERT_GE(second, 0);
  const std::string refusal = read_to_eof(second);
  EXPECT_NE(refusal.find("overloaded"), std::string::npos) << refusal;
  ::close(second);
  server.stop();
}

TEST(Server, DrainShedsNewWorkThenStopsCleanly) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("drain");
  Server server(service, options);
  server.start();

  const auto app = testing::make_pair_app();
  Client client(options.socket_path);
  ASSERT_TRUE(client.call(request_for(*app, "before")).ok);

  service.begin_drain();
  const Response shed = client.call(request_for(*app, "after"));
  EXPECT_FALSE(shed.ok);
  EXPECT_NE(shed.error.find("draining"), std::string::npos) << shed.error;
  bool draining = false;
  EXPECT_TRUE(client.health(&draining));
  EXPECT_TRUE(draining);

  // Nothing in flight: the drain budget is not consumed and the shutdown
  // is clean.
  EXPECT_TRUE(server.drain(2.0));
  EXPECT_FALSE(server.running());
}

TEST(Server, RetryingClientReconnectsAcrossAServerRestart) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("restart");
  const auto app = testing::make_pair_app();

  ClientOptions retrying;
  retrying.retry.enabled = true;
  retrying.retry.max_attempts = 8;
  retrying.retry.initial_backoff_sec = 0.02;

  auto server = std::make_unique<Server>(service, options);
  server->start();
  Client client(options.socket_path, retrying);
  ASSERT_TRUE(client.call(request_for(*app, "first")).ok);

  // Restart the daemon out from under the connected client: the next
  // call must reconnect under backoff and re-send transparently.
  server->stop();
  server = std::make_unique<Server>(service, options);
  server->start();
  const Response res = client.call(request_for(*app, "second"));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  server->stop();
}

TEST(Server, FailFastConnectErrorNamesThePathAndHint) {
  try {
    Client client("/tmp/letdma-serve-test-definitely-absent.sock");
    FAIL() << "connect to a missing socket should throw";
  } catch (const support::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("definitely-absent"), std::string::npos) << what;
    EXPECT_NE(what.find("no socket at this path"), std::string::npos)
        << what;
  }
}

TEST(Server, StaleSocketIsUnlinkedButALiveDaemonIsRefused) {
  ServerOptions options;
  options.socket_path = test_socket("stale");

  // A dead daemon's leftover: bound once, never unlinked, nobody
  // accepting. start() must reclaim the path.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    ::close(fd);
  }
  Service service(fast_options());
  Server server(service, options);
  server.start();  // unlinks the stale socket instead of failing
  const auto app = testing::make_pair_app();
  Client client(options.socket_path);
  EXPECT_TRUE(client.call(request_for(*app, "reclaimed")).ok);

  // But a *live* daemon on the path is never stolen.
  Server usurper(service, options);
  EXPECT_THROW(usurper.start(), support::Error);
  EXPECT_TRUE(server.running());
  server.stop();
}

TEST(Server, RequestDeadlineStillProducesAnAnswer) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("deadline");
  Server server(service, options);
  server.start();

  const auto app = testing::make_fig1_app();
  Request req = request_for(*app, "dl");
  req.budget_sec = 2.0;
  req.deadline_sec = 0.001;  // effectively already spent on arrival
  Client client(options.socket_path);
  const Response res = client.call(req);
  // A spent deadline degrades to the last-ditch giotto level — the
  // caller still gets a certified schedule, never a hang.
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  server.stop();
}

}  // namespace
}  // namespace letdma::serve
