#include "letdma/serve/server.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"

namespace letdma::serve {
namespace {

ServiceOptions fast_options() {
  ServiceOptions options;
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

std::string test_socket(const char* tag) {
  return "/tmp/letdma-serve-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

Request request_for(const model::Application& app, std::string id) {
  Request req;
  req.id = std::move(id);
  req.model_text = model::write_application(app);
  req.budget_sec = 2.0;
  req.want_schedule = false;
  return req;
}

TEST(Protocol, RequestLineRoundTrips) {
  const auto app = testing::make_pair_app();
  Request req = request_for(*app, "req-7");
  req.tenant = "acme";
  req.objective = engine::Objective::kMinTransfers;
  req.budget_sec = 0.25;
  req.want_schedule = true;
  req.stream_incumbents = true;

  const Request parsed = parse_request_line(render_request_line(req));
  EXPECT_EQ(parsed.id, req.id);
  EXPECT_EQ(parsed.tenant, req.tenant);
  EXPECT_EQ(parsed.objective, req.objective);
  EXPECT_DOUBLE_EQ(parsed.budget_sec, req.budget_sec);
  EXPECT_EQ(parsed.want_schedule, req.want_schedule);
  EXPECT_EQ(parsed.stream_incumbents, req.stream_incumbents);
  EXPECT_EQ(parsed.model_text, req.model_text);
}

TEST(Protocol, ResponseLineRoundTrips) {
  Response res;
  res.id = "req-7";
  res.ok = true;
  res.status = engine::Status::kFeasible;
  res.certified = true;
  res.cache_hit = true;
  res.fingerprint = "00ff00ff00ff00ff00ff00ff00ff00ff";
  res.exact = true;
  res.objective_value = 0.375;
  res.strategy = "ls";
  res.wall_ms = 1.25;
  res.incumbents = 3;
  res.schedule_text = "s0 ...\nschedule ...\n";

  const Response parsed = parse_response_line(render_response_line(res));
  EXPECT_EQ(parsed.id, res.id);
  EXPECT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.status, res.status);
  EXPECT_TRUE(parsed.certified);
  EXPECT_TRUE(parsed.cache_hit);
  EXPECT_EQ(parsed.fingerprint, res.fingerprint);
  EXPECT_DOUBLE_EQ(parsed.objective_value, res.objective_value);
  EXPECT_EQ(parsed.strategy, res.strategy);
  EXPECT_EQ(parsed.incumbents, res.incumbents);
  EXPECT_EQ(parsed.schedule_text, res.schedule_text);
}

TEST(Protocol, MalformedRequestLineThrows) {
  EXPECT_THROW(parse_request_line("not json\n"), support::Error);
  EXPECT_THROW(parse_request_line(R"({"id":"x","objective":"bogus"})"),
               support::Error);
}

TEST(Server, SingleCallOverTheSocket) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("single");
  options.threads = 2;
  Server server(service, options);
  server.start();
  EXPECT_TRUE(server.running());

  const auto app = testing::make_fig1_app();
  Client client(options.socket_path);
  const Response res = client.call(request_for(*app, "one"));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  EXPECT_EQ(res.id, "one");

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(Server, PipelinedBatchKeepsOrderAndHitsTheCache) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("batch");
  options.threads = 2;
  Server server(service, options);
  server.start();

  const auto app = testing::make_fig1_app();
  // Seed the cache through the wire, then pipeline permuted duplicates.
  {
    Client warm(options.socket_path);
    ASSERT_TRUE(warm.call(request_for(*app, "warm")).ok);
  }
  std::vector<Request> batch;
  batch.push_back(request_for(*app, "b0"));
  batch.push_back(request_for(
      *model::permute_application(*app, {1, 0, 2, 3, 4, 5}), "b1"));
  batch.push_back(request_for(
      *model::permute_application(*app, {}, {}, {1, 0}), "b2"));
  batch.push_back(request_for(*app, "b3"));

  Client client(options.socket_path);
  const std::vector<Response> responses = client.call_batch(batch);
  ASSERT_EQ(responses.size(), batch.size());
  for (std::size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].id, batch[i].id);
    EXPECT_TRUE(responses[i].ok) << responses[i].error;
    EXPECT_TRUE(responses[i].certified);
    EXPECT_TRUE(responses[i].cache_hit) << responses[i].id;
  }
  server.stop();
}

TEST(Server, StreamingCallDeliversIncumbentEvents) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("stream");
  Server server(service, options);
  server.start();

  const auto app = testing::make_fig1_app();
  Request req = request_for(*app, "s");
  req.stream_incumbents = true;
  std::vector<IncumbentUpdate> updates;
  Client client(options.socket_path);
  const Response res = client.call(
      req, [&updates](const IncumbentUpdate& u) { updates.push_back(u); });
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(static_cast<int>(updates.size()), res.incumbents);
  server.stop();
}

TEST(Server, StartStopCyclesDoNotLeakSocketsOrThreads) {
  Service service(fast_options());
  const auto app = testing::make_pair_app();
  ServerOptions options;
  options.socket_path = test_socket("cycle");
  for (int round = 0; round < 3; ++round) {
    Server server(service, options);
    server.start();
    Client client(options.socket_path);
    EXPECT_TRUE(client.call(request_for(*app, "r")).ok);
    server.stop();
    server.stop();  // idempotent
    EXPECT_THROW(Client dead(options.socket_path), support::Error);
  }
}

TEST(Server, MalformedLineGetsAnErrorResponse) {
  Service service(fast_options());
  ServerOptions options;
  options.socket_path = test_socket("bad");
  Server server(service, options);
  server.start();

  // Speak the raw protocol: a junk line must produce an error result,
  // not a dropped connection or a crash.
  Client client(options.socket_path);
  Request bad;
  bad.id = "junk";
  bad.model_text = "this is not a model";
  const Response res = client.call(bad);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
  server.stop();
}

}  // namespace
}  // namespace letdma::serve
