#include "letdma/serve/cache.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/engine/supervised.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/model/canonical.hpp"

namespace letdma::serve {
namespace {

model::Fingerprint fp(std::uint64_t hi, std::uint64_t lo) {
  model::Fingerprint f;
  f.hi = hi;
  f.lo = lo;
  return f;
}

/// A real cache entry: app + comms + a schedule actually solved on them.
std::shared_ptr<CachedSolve> make_entry() {
  auto app = testing::make_pair_app();
  auto comms = std::make_unique<let::LetComms>(*app);
  engine::GuardOptions options;
  options.chain = {"greedy", "giotto"};
  engine::SupervisedScheduler scheduler(options);
  engine::Budget budget(1.0);
  engine::SharedIncumbent incumbent;
  auto outcome = scheduler.solve(*comms, budget, incumbent);
  EXPECT_TRUE(outcome.schedule.has_value());
  return std::make_shared<CachedSolve>(
      CachedSolve{std::move(app), std::move(comms), *outcome.schedule,
                  outcome.status, outcome.objective, outcome.strategy});
}

TEST(SolveCache, MissThenHit) {
  SolveCache cache(8, 2);
  const CacheKey key{fp(1, 2), engine::Objective::kMinMaxLatencyRatio};
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, make_entry());
  const auto hit = cache.lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, ObjectiveIsPartOfTheKey) {
  SolveCache cache(8, 1);
  const CacheKey del{fp(1, 2), engine::Objective::kMinMaxLatencyRatio};
  const CacheKey dmat{fp(1, 2), engine::Objective::kMinTransfers};
  cache.insert(del, make_entry());
  EXPECT_NE(cache.lookup(del), nullptr);
  EXPECT_EQ(cache.lookup(dmat), nullptr);
}

TEST(SolveCache, EvictsLeastRecentlyUsed) {
  // One shard so the LRU order is global and observable.
  SolveCache cache(2, 1);
  const CacheKey a{fp(1, 1), engine::Objective::kMinMaxLatencyRatio};
  const CacheKey b{fp(2, 2), engine::Objective::kMinMaxLatencyRatio};
  const CacheKey c{fp(3, 3), engine::Objective::kMinMaxLatencyRatio};
  cache.insert(a, make_entry());
  cache.insert(b, make_entry());
  EXPECT_NE(cache.lookup(a), nullptr);  // a is now most recent
  cache.insert(c, make_entry());        // evicts b
  EXPECT_NE(cache.lookup(a), nullptr);
  EXPECT_EQ(cache.lookup(b), nullptr);
  EXPECT_NE(cache.lookup(c), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SolveCache, InvalidateRemovesEntry) {
  SolveCache cache(8, 2);
  const CacheKey key{fp(9, 9), engine::Objective::kFeasibility};
  cache.insert(key, make_entry());
  EXPECT_NE(cache.lookup(key), nullptr);
  cache.invalidate(key);
  EXPECT_EQ(cache.lookup(key), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1);
  cache.invalidate(key);  // absent: a no-op, not a second invalidation
  EXPECT_EQ(cache.stats().invalidations, 1);
}

TEST(SolveCache, DuplicateInsertReplaces) {
  SolveCache cache(4, 1);
  const CacheKey key{fp(5, 5), engine::Objective::kMinMaxLatencyRatio};
  cache.insert(key, make_entry());
  const auto replacement = make_entry();
  cache.insert(key, replacement);
  EXPECT_EQ(cache.lookup(key).get(), replacement.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SolveCache, SharedOwnershipSurvivesEviction) {
  // A response being served from an entry must stay valid even if the
  // entry is evicted mid-flight — shared_ptr ownership, not references.
  SolveCache cache(1, 1);
  const CacheKey a{fp(1, 0), engine::Objective::kMinMaxLatencyRatio};
  const CacheKey b{fp(2, 0), engine::Objective::kMinMaxLatencyRatio};
  cache.insert(a, make_entry());
  const auto held = cache.lookup(a);
  cache.insert(b, make_entry());  // evicts a
  ASSERT_NE(held, nullptr);
  EXPECT_GT(held->app->num_tasks(), 0);
  EXPECT_FALSE(held->strategy.empty());
}

TEST(SolveCache, ConcurrentMixedOperationsStayConsistent) {
  SolveCache cache(32, 4);
  const auto entry = make_entry();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&cache, &entry, t] {
      for (int i = 0; i < 200; ++i) {
        const CacheKey key{fp(static_cast<std::uint64_t>(i % 40),
                              static_cast<std::uint64_t>(t)),
                          engine::Objective::kMinMaxLatencyRatio};
        if (i % 3 == 0) {
          cache.insert(key, entry);
        } else if (i % 7 == 0) {
          cache.invalidate(key);
        } else {
          (void)cache.lookup(key);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_LE(cache.size(), cache.capacity());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.size, cache.size());
  EXPECT_GE(stats.hits + stats.misses, 1);
}

}  // namespace
}  // namespace letdma::serve
