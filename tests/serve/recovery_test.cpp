// Crash-safe recovery end to end: a Service built on an existing journal
// must replay it, re-certify every record before admission, drop anything
// torn, tampered or stale — and then serve recovered entries as certified
// cache hits, including to permuted (isomorphic) resubmissions. The chaos
// test SIGKILLs a child daemon mid-load and asserts the survivor set.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/model/canonical.hpp"
#include "letdma/model/io.hpp"
#include "letdma/serve/journal.hpp"
#include "letdma/serve/service.hpp"

namespace letdma::serve {
namespace {

ServiceOptions fast_options() {
  ServiceOptions options;
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

std::string test_journal_path(const char* tag) {
  return "/tmp/letdma-recovery-test-" + std::string(tag) + "-" +
         std::to_string(::getpid()) + ".wal";
}

class JournalFile {
 public:
  explicit JournalFile(const char* tag) : path_(test_journal_path(tag)) {
    std::remove(path_.c_str());
  }
  ~JournalFile() {
    std::remove(path_.c_str());
    std::remove((path_ + ".tmp").c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Request request_for(const model::Application& app, std::string id) {
  Request req;
  req.id = std::move(id);
  req.model_text = model::write_application(app);
  req.budget_sec = 2.0;
  req.want_schedule = true;
  return req;
}

TEST(Recovery, RestartServesRecoveredEntriesAsCertifiedHits) {
  JournalFile file("warm");
  const auto fig1 = testing::make_fig1_app();
  const auto pair = testing::make_pair_app();
  {
    ServiceOptions options = fast_options();
    options.journal_path = file.path();
    Service first(options);
    ASSERT_TRUE(first.handle(request_for(*fig1, "a")).ok);
    ASSERT_TRUE(first.handle(request_for(*pair, "b")).ok);
    EXPECT_EQ(first.stats().journal.appended, 2);
    // No clean shutdown: the journal alone carries the cache across.
  }
  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  Service second(options);
  const ServiceStats boot = second.stats();
  EXPECT_EQ(boot.journal.recovered, 2);
  EXPECT_EQ(boot.journal.dropped_uncertified, 0);
  EXPECT_EQ(boot.cache.size, 2u);

  // An isomorphic resubmission (tasks permuted) must hit the recovered
  // cache and still be certified against the *requesting* instance.
  const auto permuted =
      model::permute_application(*fig1, {1, 0, 2, 3, 4, 5});
  const Response res = second.handle(request_for(*permuted, "p"));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.cache_hit);
  EXPECT_TRUE(res.certified);
}

TEST(Recovery, TornTailIsDroppedAndCompactionHealsTheFile) {
  JournalFile file("torn");
  const auto fig1 = testing::make_fig1_app();
  {
    ServiceOptions options = fast_options();
    options.journal_path = file.path();
    Service first(options);
    ASSERT_TRUE(first.handle(request_for(*fig1, "a")).ok);
  }
  // Crash mid-append: half a record of garbage framing at the tail.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "LDJ1\x40\x00\x00\x00partial";
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }
  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  Service second(options);
  const ServiceStats boot = second.stats();
  EXPECT_EQ(boot.journal.recovered, 1);
  EXPECT_GT(boot.journal.torn_bytes, 0);

  // Recovery compacts the survivors back to disk, so a third boot sees a
  // clean journal with no torn tail left.
  Service third(options);
  EXPECT_EQ(third.stats().journal.recovered, 1);
  EXPECT_EQ(third.stats().journal.torn_bytes, 0);
}

TEST(Recovery, TamperedScheduleIsDroppedNotServed) {
  JournalFile file("tamper");
  const auto fig1 = testing::make_fig1_app();
  const model::Canonicalization canon = model::canonicalize(*fig1);
  JournalRecord rec;
  rec.canonical_text = model::write_application(*canon.app);
  rec.schedule_text = "not a schedule at all\n";  // parses nothing
  rec.strategy = "milp";
  rec.objective = engine::Objective::kMinMaxLatencyRatio;
  rec.status = engine::Status::kFeasible;
  {
    Journal journal(file.path());
    journal.append(rec);
  }
  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  Service service(options);
  const ServiceStats boot = service.stats();
  EXPECT_EQ(boot.journal.recovered, 0);
  EXPECT_EQ(boot.journal.dropped_uncertified, 1);
  EXPECT_EQ(boot.cache.size, 0u);
}

TEST(Recovery, NonCanonicalRecordIsDroppedAsStale) {
  JournalFile file("stale");
  // A record whose model text is valid but NOT in canonical form (raw
  // fig1 ordering): recovery re-canonicalizes, sees the drift, drops it —
  // the permutation maps it was certified under no longer apply.
  const auto fig1 = testing::make_fig1_app();
  ASSERT_NE(model::write_application(*fig1),
            model::canonicalize(*fig1).text);
  JournalRecord rec;
  rec.canonical_text = model::write_application(*fig1);
  rec.schedule_text = "irrelevant";
  rec.strategy = "ls";
  {
    Journal journal(file.path());
    journal.append(rec);
  }
  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  Service service(options);
  const ServiceStats boot = service.stats();
  EXPECT_EQ(boot.journal.recovered, 0);
  EXPECT_EQ(boot.journal.dropped_stale + boot.journal.dropped_uncertified,
            1);
  EXPECT_EQ(boot.cache.size, 0u);
}

TEST(Recovery, CompactionTriggersAtTheConfiguredThreshold) {
  JournalFile file("compact");
  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  options.journal_compact_every = 2;
  Service service(options);
  // Three distinct instances → three appends → at least one periodic
  // compaction at the threshold of two.
  ASSERT_TRUE(
      service.handle(request_for(*testing::make_fig1_app(), "a")).ok);
  ASSERT_TRUE(
      service.handle(request_for(*testing::make_pair_app(), "b")).ok);
  ASSERT_TRUE(
      service
          .handle(request_for(*testing::make_multireader_app(), "c"))
          .ok);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.journal.appended, 3);
  EXPECT_GE(stats.journal.compactions, 1);

  // The compacted journal still carries every live entry.
  Service reborn(options);
  EXPECT_EQ(reborn.stats().journal.recovered, 3);
}

TEST(Recovery, SigkillMidLoadRecoversOnlyCertifiedEntries) {
  JournalFile file("chaos");
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: journal-backed service under continuous load until killed.
    // _exit on any failure path — a forked gtest child must never run
    // the parent's test teardown.
    ServiceOptions options = fast_options();
    options.journal_path = file.path();
    Service service(options);
    const auto fig1 = testing::make_fig1_app();
    const auto pair = testing::make_pair_app();
    const auto multi = testing::make_multireader_app();
    for (int i = 0;; ++i) {
      const model::Application* apps[] = {fig1.get(), pair.get(),
                                          multi.get()};
      if (!service.handle(request_for(*apps[i % 3], "c")).ok) _exit(3);
    }
  }
  // Parent: wait until at least one record hit the disk, then SIGKILL —
  // no drain, no compaction, possibly a torn tail.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool journaled = false;
  while (std::chrono::steady_clock::now() < deadline) {
    struct stat st{};
    if (::stat(file.path().c_str(), &st) == 0 && st.st_size > 0) {
      journaled = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(child, SIGKILL);
  int status = 0;
  ::waitpid(child, &status, 0);
  ASSERT_TRUE(journaled) << "child never wrote a journal record";
  ASSERT_TRUE(WIFSIGNALED(status));

  ServiceOptions options = fast_options();
  options.journal_path = file.path();
  Service survivor(options);
  const ServiceStats boot = survivor.stats();
  // Everything decodable was re-certified; nothing uncertified was let in.
  EXPECT_GE(boot.journal.recovered, 1);
  EXPECT_EQ(boot.journal.dropped_uncertified, 0);
  EXPECT_EQ(boot.cache.size,
            static_cast<std::size_t>(boot.journal.recovered));

  // And the recovered cache actually serves: a replayed request is a
  // certified hit.
  const Response res =
      survivor.handle(request_for(*testing::make_fig1_app(), "replay"));
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_TRUE(res.certified);
  EXPECT_TRUE(res.cache_hit);
}

}  // namespace
}  // namespace letdma::serve
