#include "letdma/guard/certify.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/let/transfer.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/sim/simulator.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::guard {
namespace {

using letdma::testing::make_fig1_app;
using letdma::testing::make_pair_app;

/// Certified schedules must agree with the simulator: every task's
/// simulated LET latency stays within the analytic worst case computed
/// from the same schedule (the analytic bound is what certification's
/// deadline check rests on).
void expect_simulator_agreement(const let::LetComms& comms,
                                const let::ScheduleResult& schedule) {
  const sim::ProtocolSimulator simulator(comms, &schedule.schedule, {});
  const sim::SimResult sim = simulator.run();
  const auto analytic = let::worst_case_latencies(
      comms, schedule.schedule, let::ReadinessSemantics::kProposed);
  for (const auto& [task, sim_latency] : sim.max_latency) {
    ASSERT_LT(static_cast<std::size_t>(task), analytic.size())
        << "task " << task;
    EXPECT_LE(sim_latency, analytic[static_cast<std::size_t>(task)])
        << "simulated latency exceeds the certified analytic bound for "
           "task "
        << task;
  }
}

TEST(Certify, AcceptsGreedyScheduleOnFig1) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);
  const Certificate cert = certify(comms, schedule);
  EXPECT_TRUE(cert.certified()) << cert.summary();
  expect_simulator_agreement(comms, schedule);
}

TEST(Certify, AgreesWithValidateAndSimulatorOnWaters) {
  const auto app = waters::make_waters_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);
  const auto report =
      let::validate_schedule(comms, schedule.layout, schedule.schedule);
  const Certificate cert = certify(comms, schedule);
  EXPECT_EQ(cert.certified(), report.ok());
  ASSERT_TRUE(cert.certified()) << cert.summary();
  expect_simulator_agreement(comms, schedule);
}

TEST(Certify, AgreesWithValidateAndSimulatorOn50RandomInstances) {
  int certified = 0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    model::GeneratorOptions opt;
    opt.seed = seed;
    opt.num_cores = 2 + static_cast<int>(seed % 3);
    opt.num_tasks = 6 + static_cast<int>(seed % 5);
    opt.num_labels = 8 + static_cast<int>(seed % 7);
    const auto app = model::generate_application(opt);
    const let::LetComms comms(*app);
    if (comms.comms_at_s0().empty()) continue;
    const let::ScheduleResult schedule =
        let::GreedyScheduler::best_latency_ratio(comms);
    const auto report =
        let::validate_schedule(comms, schedule.layout, schedule.schedule);
    const Certificate cert = certify(comms, schedule);
    // Independent certification and the validator must agree on greedy
    // output (certification only adds structural checks the greedy
    // constructor satisfies by construction).
    EXPECT_EQ(cert.certified(), report.ok()) << "seed " << seed << "\n"
                                             << cert.summary();
    if (cert.certified()) {
      ++certified;
      expect_simulator_agreement(comms, schedule);
    }
  }
  // The sweep must actually exercise the certifier, not skip everything.
  EXPECT_GE(certified, 20);
}

// --- mutation tests: each corruption is pinpointed by rule -------------

TEST(Certify, FlagsWriteMovedAfterRead) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);
  ASSERT_TRUE(certify(comms, schedule).certified());

  // Reverse the s0 instant: reads now precede the writes they depend on.
  let::TransferSchedule::PerInstant s0 = schedule.schedule.at(0);
  ASSERT_GE(s0.size(), 2u);
  std::reverse(s0.begin(), s0.end());
  schedule.schedule.set_instant(0, s0);

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(let::Rule::kProperty1) ||
              cert.flags(let::Rule::kProperty2))
      << cert.summary();
}

TEST(Certify, FlagsDroppedTransferAsCoverage) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  let::TransferSchedule::PerInstant s0 = schedule.schedule.at(0);
  ASSERT_FALSE(s0.empty());
  s0.pop_back();
  schedule.schedule.set_instant(0, s0);

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(let::Rule::kCoverage)) << cert.summary();
}

TEST(Certify, FlagsDuplicatedTransferAsDuplicateComm) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  let::TransferSchedule::PerInstant s0 = schedule.schedule.at(0);
  ASSERT_FALSE(s0.empty());
  s0.push_back(s0.front());
  schedule.schedule.set_instant(0, s0);

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(let::Rule::kDuplicateComm)) << cert.summary();
}

TEST(Certify, FlagsLayoutSlotSwapAsTransferShape) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  // Swap two slots in some memory order without rebuilding the transfers:
  // the layout is still a valid permutation, but the recorded transfer
  // addresses / contiguity no longer match it.
  bool swapped = false;
  const model::Application& a = *app;
  for (int m = 0; m < a.platform().num_memories() && !swapped; ++m) {
    const model::MemoryId mem{m};
    if (!schedule.layout.has_order(mem)) continue;
    std::vector<let::Slot> order = schedule.layout.order(mem);
    if (order.size() < 2) continue;
    std::swap(order.front(), order.back());
    schedule.layout.set_order(mem, std::move(order));
    swapped = true;
  }
  ASSERT_TRUE(swapped);

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(Check::kTransferShape) ||
              cert.flags(let::Rule::kMalformedTransfer) ||
              cert.flags(let::Rule::kProperty3))
      << cert.summary();
}

TEST(Certify, FlagsMissedAcquisitionDeadlineWithNegativeSlack) {
  // A gamma so tight no transfer order can meet it: 1 ns after release.
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const model::TaskId prod =
      app->add_task("PROD", support::ms(10), support::ms(2), model::CoreId{0});
  const model::TaskId cons =
      app->add_task("CONS", support::ms(10), support::ms(2), model::CoreId{1});
  app->add_label("x", 4096, prod, {cons});
  app->set_acquisition_deadline(cons, 1);
  app->finalize();
  const let::LetComms comms(*app);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  ASSERT_TRUE(cert.flags(let::Rule::kDeadline)) << cert.summary();
  for (const Diagnostic& d : cert.diagnostics) {
    if (d.violation && d.violation->rule == let::Rule::kDeadline) {
      EXPECT_LT(d.violation->slack, 0.0);
      EXPECT_GE(d.violation->task, 0);
    }
  }
}

TEST(Certify, MissingLayoutIsLayoutIntegrity) {
  const auto app = make_pair_app();
  const let::LetComms comms(*app);
  let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);
  schedule.layout = let::MemoryLayout(*app);  // wipe every order

  const Certificate cert = certify(comms, schedule);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(Check::kLayoutIntegrity)) << cert.summary();
}

TEST(Certify, EvaluatorCrossCheckCertifiesCleanSchedules) {
  const auto app = waters::make_waters_app();
  const let::LetComms comms(*app);
  const let::CompiledComms compiled(comms);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  CertifyOptions options;
  options.compiled = &compiled;
  const Certificate cert = certify(comms, schedule, options);
  EXPECT_TRUE(cert.certified()) << cert.summary();
}

TEST(Certify, EvaluatorCrossCheckRejectsForeignCompiledInstance) {
  const auto app = waters::make_waters_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult schedule =
      let::GreedyScheduler::best_latency_ratio(comms);

  // A compiled instance built from a *different* LetComms over the same
  // application: the cross-check must refuse to compare rather than
  // certify against state the schedule was not produced from.
  const let::LetComms other(*app);
  const let::CompiledComms foreign(other);
  CertifyOptions options;
  options.compiled = &foreign;
  const Certificate cert = certify(comms, schedule, options);
  ASSERT_FALSE(cert.certified());
  EXPECT_TRUE(cert.flags(Check::kEvaluatorConsistency)) << cert.summary();
}

}  // namespace
}  // namespace letdma::guard
