// Deterministic malformed-input corpus over both text parsers
// (model::read_application, let::read_schedule): every entry must produce
// a structured support::ParseError — never UB, an uncaught foreign
// exception, or a silently partial parse. A seeded truncation/corruption
// fuzz over valid documents closes the gap between the hand-written
// corpus and arbitrary damage.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/let/schedule_io.hpp"
#include "letdma/model/io.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/rng.hpp"

namespace letdma {
namespace {

using letdma::testing::make_fig1_app;
using support::ParseError;

const char* const kValidApp = R"(platform cores=2 odp_ns=3360 oisr_ns=10000 wc=1 cpu_wc=4 cpu_oh_ns=200
task name=A period_ns=10000000 wcet_ns=2000000 core=0
task name=B period_ns=10000000 wcet_ns=2000000 core=1
label name=x bytes=1000 writer=A readers=B
)";

TEST(MalformedCorpus, ValidApplicationStillParses) {
  const auto app = model::read_application(kValidApp);
  EXPECT_EQ(app->num_tasks(), 2);
  EXPECT_EQ(app->num_labels(), 1);
}

TEST(MalformedCorpus, ApplicationParserRejectsEveryCorpusEntry) {
  const std::vector<std::pair<const char*, std::string>> corpus = {
      {"empty document", ""},
      {"comment only", "# nothing here\n"},
      {"no platform", "task name=A period_ns=10 wcet_ns=1 core=0\n"},
      {"unknown directive",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "frobnicate name=A\n"},
      {"missing key",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 core=0\n"},
      {"unknown key",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1 "
       "bogus=1\n"},
      {"duplicate key",
       "platform cores=2 cores=3 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 "
       "cpu_oh_ns=1\n"},
      {"non-integer int",
       "platform cores=two odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"trailing garbage on int",
       "platform cores=2x odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"non-finite double",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=nan cpu_wc=1 cpu_oh_ns=1\n"},
      {"infinite double",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=inf cpu_wc=1 cpu_oh_ns=1\n"},
      {"negative copy cost",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=-1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"zero cores",
       "platform cores=0 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"negative overhead",
       "platform cores=2 odp_ns=-5 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"duplicate platform",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"task before platform",
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"},
      {"zero period",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=0 wcet_ns=0 core=0\n"},
      {"wcet beyond period",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=20 core=0\n"},
      {"core out of range",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=2\n"},
      {"negative core",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=-1\n"},
      {"gamma beyond period",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0 gamma_ns=11\n"},
      {"duplicate task name",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "task name=A period_ns=10 wcet_ns=1 core=1\n"},
      {"zero-byte label",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "task name=B period_ns=10 wcet_ns=1 core=1\n"
       "label name=x bytes=0 writer=A readers=B\n"},
      {"unknown writer",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "label name=x bytes=10 writer=Z readers=A\n"},
      {"unknown reader",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "label name=x bytes=10 writer=A readers=Z\n"},
      {"label without readers",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task name=A period_ns=10 wcet_ns=1 core=0\n"
       "label name=x bytes=10 writer=A readers=,\n"},
      {"key without value form",
       "platform cores=2 odp_ns=1 oisr_ns=1 wc=1 cpu_wc=1 cpu_oh_ns=1\n"
       "task noequals period_ns=10 wcet_ns=1 core=0\n"},
  };
  for (const auto& [label, text] : corpus) {
    EXPECT_THROW(
        {
          try {
            model::read_application(text);
          } catch (const ParseError& e) {
            EXPECT_GE(e.line(), 0) << label;
            throw;
          }
        },
        ParseError)
        << "corpus entry: " << label;
  }
}

TEST(MalformedCorpus, ScheduleParserRejectsEveryCorpusEntry) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const std::vector<std::pair<const char*, std::string>> corpus = {
      {"unknown directive", "schedule foo=bar\n"},
      {"layout missing keys", "layout mem=M1\n"},
      {"unknown memory", "layout mem=M99 slots=lA\n"},
      {"unknown label", "layout mem=M1 slots=nosuch\n"},
      {"unknown owner task", "layout mem=M1 slots=lA@nosuch\n"},
      {"empty slot token", "layout mem=M1 slots=,\n"},
      {"bad token shape", "layout =oops\n"},
      {"duplicate key", "layout mem=M1 mem=M1 slots=lA\n"},
      {"transfer missing comms", "transfer dir=W\n"},
      {"bad comm token", "transfer comms=W:tau1\n"},
      {"bad direction", "transfer comms=X:tau1:lA\n"},
      {"unknown comm task", "transfer comms=W:nosuch:lA\n"},
      {"unknown comm label", "transfer comms=W:tau1:nosuch\n"},
  };
  for (const auto& [label, text] : corpus) {
    EXPECT_THROW(let::read_schedule(comms, text), ParseError)
        << "corpus entry: " << label;
  }
}

TEST(MalformedCorpus, ScheduleParserRejectsDuplicateLayout) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult good =
      let::GreedyScheduler::best_latency_ratio(comms);
  const std::string text = let::write_schedule(*app, good);
  // Find the first layout line and duplicate it at the end.
  const std::size_t start = text.find("layout ");
  ASSERT_NE(start, std::string::npos);
  const std::size_t end = text.find('\n', start);
  const std::string dup = text + text.substr(start, end - start) + "\n";
  EXPECT_THROW(let::read_schedule(comms, dup), ParseError);
}

/// Seeded damage fuzz: truncations and byte corruptions of valid
/// documents must parse fully or throw support::Error — nothing else.
template <typename ParseFn>
void fuzz_damage(const std::string& valid, std::uint64_t seed,
                 ParseFn&& parse) {
  support::Rng rng(seed);
  for (int i = 0; i < 200; ++i) {
    std::string damaged = valid;
    if (i % 2 == 0) {
      damaged.resize(rng.uniform_int(
          0, static_cast<int>(damaged.size())));
    } else {
      const int flips = rng.uniform_int(1, 8);
      for (int f = 0; f < flips && !damaged.empty(); ++f) {
        const int at = rng.uniform_int(
            0, static_cast<int>(damaged.size()) - 1);
        damaged[static_cast<std::size_t>(at)] =
            static_cast<char>(rng.uniform_int(1, 126));
      }
    }
    try {
      parse(damaged);  // a clean parse of damaged text is acceptable
    } catch (const support::Error&) {
      // structured failure: acceptable
    }
    // anything else (foreign exception, crash) fails the test/sanitizers
  }
}

TEST(MalformedCorpus, ApplicationParserSurvivesSeededDamage) {
  const auto app = make_fig1_app();
  const std::string valid = model::write_application(*app);
  fuzz_damage(valid, 0xA11CE5,
              [](const std::string& text) { model::read_application(text); });
}

TEST(MalformedCorpus, ScheduleParserSurvivesSeededDamage) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult good =
      let::GreedyScheduler::best_latency_ratio(comms);
  const std::string valid = let::write_schedule(*app, good);
  fuzz_damage(valid, 0xB0B,
              [&](const std::string& text) { let::read_schedule(comms, text); });
}

}  // namespace
}  // namespace letdma
