#include "letdma/guard/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "letdma/support/error.hpp"

namespace letdma::guard {
namespace {

/// Disarms around every test so a leftover plan can never leak into other
/// suites running in the same process.
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { disarm(); }
  void TearDown() override { disarm(); }
};

TEST_F(FaultsTest, ParseRejectsUnknownSiteKindAndToken) {
  EXPECT_THROW(FaultPlan::parse("bogus.site=throw"),
               support::PreconditionError);
  EXPECT_THROW(FaultPlan::parse("milp.node=explode"),
               support::PreconditionError);
  EXPECT_THROW(FaultPlan::parse("seed=notanumber"),
               support::PreconditionError);
  EXPECT_THROW(FaultPlan::parse("milp.node=throw@1.5"),
               support::PreconditionError);
}

TEST_F(FaultsTest, ParseReadsSeedSitesAndRates) {
  const FaultPlan plan =
      FaultPlan::parse("seed=42,milp.node=throw@0.25,engine.ls=stall");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.specs.size(), 2u);
  EXPECT_EQ(plan.specs[0].site, "milp.node");
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kThrow);
  EXPECT_DOUBLE_EQ(plan.specs[0].rate, 0.25);
  EXPECT_EQ(plan.specs[1].site, "engine.ls");
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(plan.specs[1].rate, 1.0);
}

TEST_F(FaultsTest, ChaosPresetArmsEverySite) {
  const FaultPlan plan = FaultPlan::chaos(7);
  EXPECT_EQ(plan.seed, 7u);
  EXPECT_FALSE(plan.empty());
  // Every spec names a known site (parse round-trip would reject others);
  // at least the solver and io sites must be covered.
  bool has_milp = false, has_worker = false, has_io = false,
       has_engine = false;
  for (const FaultSpec& s : plan.specs) {
    if (s.site == "milp.node") has_milp = true;
    if (s.site == "milp.worker") has_worker = true;
    if (s.site == "io.parse") has_io = true;
    if (s.site.rfind("engine.", 0) == 0) has_engine = true;
  }
  EXPECT_TRUE(has_milp);
  EXPECT_TRUE(has_worker);
  EXPECT_TRUE(has_io);
  EXPECT_TRUE(has_engine);
}

TEST_F(FaultsTest, DisarmedPollNeverFires) {
  EXPECT_FALSE(armed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(poll("milp.node"), std::nullopt);
  }
  EXPECT_EQ(fire_count("milp.node"), 0);
}

TEST_F(FaultsTest, ArmedFullRatePollFiresEveryTime) {
  if (!faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  arm(FaultPlan::parse("seed=1,engine.ls=nan"));
  EXPECT_TRUE(armed());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(poll("engine.ls"), FaultKind::kNanObjective);
    EXPECT_EQ(poll("engine.greedy"), std::nullopt);  // not armed
  }
  EXPECT_EQ(fire_count("engine.ls"), 10);
  disarm();
  EXPECT_EQ(poll("engine.ls"), std::nullopt);
  EXPECT_EQ(fire_count("engine.ls"), 0);
}

TEST_F(FaultsTest, FaultPointThrowsOnThrowKind) {
  if (!faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  arm(FaultPlan::parse("seed=1,milp.node=throw"));
  EXPECT_THROW(fault_point("milp.node"), FaultInjectedError);
  // FaultInjectedError is a support::Error, so generic solver-failure
  // handling catches it.
  arm(FaultPlan::parse("seed=1,milp.node=throw"));
  EXPECT_THROW(fault_point("milp.node"), support::Error);
}

TEST_F(FaultsTest, MaxFiresCapsTheFaultCount) {
  if (!faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  FaultPlan plan;
  plan.seed = 9;
  plan.specs.push_back({"engine.greedy", FaultKind::kStall, 1.0, 2});
  arm(plan);
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (poll("engine.greedy")) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(fire_count("engine.greedy"), 2);
}

TEST_F(FaultsTest, FiringSequenceIsDeterministicInTheSeed) {
  if (!faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto sequence = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.specs.push_back({"simplex.pivot", FaultKind::kThrow, 0.3, -1});
    arm(plan);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(poll("simplex.pivot").has_value());
    }
    disarm();
    return fires;
  };
  const auto a = sequence(123);
  const auto b = sequence(123);
  const auto c = sequence(124);
  EXPECT_EQ(a, b);  // same seed -> identical fault sequence
  EXPECT_NE(a, c);  // different seed -> different sequence
  // A 0.3 rate actually fires a nontrivial fraction of polls.
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 20);
  EXPECT_LT(fires, 120);
}

TEST_F(FaultsTest, RearmResetsFireCounts) {
  if (!faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  arm(FaultPlan::parse("seed=1,io.parse=truncate"));
  (void)poll("io.parse");
  EXPECT_EQ(fire_count("io.parse"), 1);
  arm(FaultPlan::parse("seed=1,io.parse=truncate"));
  EXPECT_EQ(fire_count("io.parse"), 0);
}

TEST_F(FaultsTest, CompiledOutInjectorIsInert) {
  if (faults_compiled_in()) {
    GTEST_SKIP() << "injector compiled in; OFF behavior covered by the "
                    "LETDMA_ENABLE_FAULTS=OFF CI job";
  }
  arm(FaultPlan::parse("seed=1,milp.node=throw"));
  EXPECT_FALSE(armed());
  EXPECT_EQ(poll("milp.node"), std::nullopt);
  EXPECT_NO_THROW(fault_point("milp.node"));
  EXPECT_EQ(fire_count("milp.node"), 0);
}

}  // namespace
}  // namespace letdma::guard
