#include "letdma/engine/supervised.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "../test_fixtures.hpp"
#include "letdma/guard/faults.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::engine {
namespace {

using letdma::testing::make_fig1_app;

class SupervisedTest : public ::testing::Test {
 protected:
  void SetUp() override { guard::disarm(); }
  void TearDown() override { guard::disarm(); }
};

TEST_F(SupervisedTest, HealthyRunServesTopOfChainCertified) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  GuardOptions opt;
  opt.chain = {"greedy", "giotto"};
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(record.fallback_level, 0);
  EXPECT_EQ(record.served_by, "greedy");
  EXPECT_EQ(record.retries, 0);
  EXPECT_EQ(record.demotions, 0);
  EXPECT_TRUE(
      certify_outcome(comms, out, opt.objective).certified());
}

TEST_F(SupervisedTest, ThrowingLevelIsRetriedThenDemoted) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse("seed=1,engine.milp=throw"));
  GuardOptions opt;
  opt.chain = {"milp", "greedy"};
  opt.retry_backoff_sec = 0.0;
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(record.served_by, "greedy");
  EXPECT_EQ(record.fallback_level, 1);
  EXPECT_EQ(record.retries, 1);   // milp retried once...
  EXPECT_EQ(record.demotions, 1); // ...then demoted
  EXPECT_TRUE(certify_outcome(comms, out, opt.objective).certified());
}

TEST_F(SupervisedTest, NanObjectiveFailsCertificationAndFallsBack) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse("seed=1,engine.ls=nan"));
  GuardOptions opt;
  opt.chain = {"ls", "greedy"};
  opt.retry_backoff_sec = 0.0;
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_TRUE(std::isfinite(out.objective));
  EXPECT_EQ(record.served_by, "greedy");
  EXPECT_GE(record.certification_failures, 1);
  EXPECT_TRUE(certify_outcome(comms, out, opt.objective).certified());
}

TEST_F(SupervisedTest, SpuriousInfeasibleIsCrossCheckedAndRefuted) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse("seed=1,engine.milp=infeasible"));
  GuardOptions opt;
  opt.chain = {"milp", "greedy"};
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  // The instance IS feasible; the injected claim must not be served.
  ASSERT_TRUE(out.feasible());
  EXPECT_NE(out.status, Status::kInfeasible);
  EXPECT_TRUE(record.infeasible_refuted);
  EXPECT_EQ(record.served_by, "greedy");
}

TEST_F(SupervisedTest, InfeasibleClaimServedWhenCrossCheckDisabled) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse("seed=1,engine.milp=infeasible"));
  GuardOptions opt;
  opt.chain = {"milp", "greedy"};
  opt.cross_check_infeasible = false;
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  EXPECT_EQ(out.status, Status::kInfeasible);
  EXPECT_FALSE(record.infeasible_refuted);
}

TEST_F(SupervisedTest, EveryLevelFaultedStillServesGiottoCertified) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse(
      "seed=5,engine.milp=throw,engine.ls=throw,engine.greedy=throw"));
  GuardOptions opt;
  opt.retry_backoff_sec = 0.0;
  const auto [out, record] = solve_supervised(comms, opt, 20.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(record.served_by, "giotto");
  EXPECT_EQ(record.fallback_level, 3);
  EXPECT_EQ(record.demotions, 3);
  EXPECT_TRUE(certify_outcome(comms, out, opt.objective).certified());
}

TEST_F(SupervisedTest, WatersUnderChaosAlwaysReturnsCertified) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = waters::make_waters_app();
  const let::LetComms comms(*app);
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    guard::arm(guard::FaultPlan::chaos(seed));
    GuardOptions opt;
    opt.retry_backoff_sec = 0.0;
    const auto [out, record] = solve_supervised(comms, opt, 15.0);
    guard::disarm();
    // Whatever the chaos plan hit, the chain must end with a certified
    // schedule (WATERS is feasible), never a crash, hang, or raw fault.
    ASSERT_TRUE(out.feasible()) << "seed " << seed;
    EXPECT_TRUE(certify_outcome(comms, out, opt.objective).certified())
        << "seed " << seed;
    EXPECT_GE(record.fallback_level, 0) << "seed " << seed;
  }
}

TEST_F(SupervisedTest, RecordsObsCountersForFallbacks) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  obs::Registry& reg = obs::Registry::instance();
  const auto base_demotions = reg.counter_value("engine.guard.demotions");
  const auto base_retries = reg.counter_value("engine.guard.retries");
  guard::arm(guard::FaultPlan::parse("seed=1,engine.milp=throw"));
  GuardOptions opt;
  opt.chain = {"milp", "greedy"};
  opt.retry_backoff_sec = 0.0;
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(reg.counter_value("engine.guard.demotions"), base_demotions + 1);
  EXPECT_EQ(reg.counter_value("engine.guard.retries"), base_retries + 1);
  EXPECT_GE(reg.counter_value("engine.guard.served." + record.served_by), 1);
}

TEST_F(SupervisedTest, DemotionDumpsTheFlightRecorder) {
  if (!guard::faults_compiled_in()) GTEST_SKIP() << "injector compiled out";
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  guard::arm(guard::FaultPlan::parse("seed=1,engine.milp=throw"));
  GuardOptions opt;
  opt.chain = {"milp", "greedy"};
  opt.retry_backoff_sec = 0.0;
  opt.flight_dump_path =
      ::testing::TempDir() + "letdma_flight_demotion.jsonl";
  std::remove(opt.flight_dump_path.c_str());
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  ASSERT_EQ(record.demotions, 1);
  EXPECT_EQ(record.flight_dump_path, opt.flight_dump_path);

  std::ifstream dump(opt.flight_dump_path);
  ASSERT_TRUE(dump.is_open()) << opt.flight_dump_path;
  std::string line, all;
  int lines = 0;
  while (std::getline(dump, line)) {
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    all += line + "\n";
    ++lines;
  }
  EXPECT_GE(lines, 4);  // solve_begin, retry, demote, solve_end at least
  for (const char* needle :
       {"\"type\":\"flight\"", "engine.guard.solve_begin",
        "engine.guard.retry", "engine.guard.demote",
        "engine.guard.solve_end"}) {
    EXPECT_NE(all.find(needle), std::string::npos) << needle;
  }
  std::remove(opt.flight_dump_path.c_str());
}

TEST_F(SupervisedTest, HealthyRunWritesNoFlightDump) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  GuardOptions opt;
  opt.chain = {"greedy", "giotto"};
  opt.flight_dump_path =
      ::testing::TempDir() + "letdma_flight_healthy.jsonl";
  std::remove(opt.flight_dump_path.c_str());
  const auto [out, record] = solve_supervised(comms, opt, 10.0);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(record.demotions, 0);
  EXPECT_TRUE(record.flight_dump_path.empty());
  std::ifstream dump(opt.flight_dump_path);
  EXPECT_FALSE(dump.is_open())
      << "uneventful solve must not write a dump";
}

TEST_F(SupervisedTest, ZeroBudgetReturnsPromptlyWithDefinedOutcome) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const auto [out, record] = solve_supervised(comms, {}, 0.0);
  EXPECT_FALSE(out.feasible());
  EXPECT_EQ(out.status, Status::kTimeout);
  EXPECT_EQ(record.fallback_level, -1);
}

TEST_F(SupervisedTest, NestedSupervisedChainIsRejected) {
  GuardOptions opt;
  opt.chain = {"supervised"};
  EXPECT_THROW(SupervisedScheduler{opt}, support::PreconditionError);
}

}  // namespace
}  // namespace letdma::engine
