#include "letdma/let/schedule_io.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/rng.hpp"

namespace letdma::let {
namespace {

using support::PreconditionError;

TEST(ScheduleIo, RoundTripFig1Greedy) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const std::string text = write_schedule(*app, g);
  const ScheduleResult loaded = read_schedule(lc, text);
  ASSERT_EQ(loaded.s0_transfers.size(), g.s0_transfers.size());
  for (std::size_t i = 0; i < g.s0_transfers.size(); ++i) {
    EXPECT_EQ(loaded.s0_transfers[i].comms, g.s0_transfers[i].comms);
    EXPECT_EQ(loaded.s0_transfers[i].bytes, g.s0_transfers[i].bytes);
    EXPECT_EQ(loaded.s0_transfers[i].local_addr,
              g.s0_transfers[i].local_addr);
    EXPECT_EQ(loaded.s0_transfers[i].global_addr,
              g.s0_transfers[i].global_addr);
  }
  // Canonical: serializing the load gives the same text.
  EXPECT_EQ(write_schedule(*app, loaded), text);
  // And the loaded configuration validates.
  const ValidationReport rep =
      validate_schedule(lc, loaded.layout, loaded.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ScheduleIo, ErrorsCarryContext) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  try {
    read_schedule(lc, "layout mem=M_9 slots=lA\n");
    FAIL() << "expected parse error";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("M_9"), std::string::npos);
  }
}

TEST(ScheduleIo, MalformedInputsRejected) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  EXPECT_THROW(read_schedule(lc, "bogus x=1\n"), PreconditionError);
  EXPECT_THROW(read_schedule(lc, "layout mem=M_G\n"), PreconditionError);
  EXPECT_THROW(read_schedule(lc, "layout mem=M_G slots=NOPE\n"),
               PreconditionError);
  EXPECT_THROW(read_schedule(lc, "transfer dir=W comms=W:tau1\n"),
               PreconditionError);
  EXPECT_THROW(read_schedule(lc, "transfer dir=W comms=X:tau1:lA\n"),
               PreconditionError);
  // Incomplete layout (only some slots of M_G listed).
  EXPECT_THROW(read_schedule(lc, "layout mem=M_G slots=lA\n"),
               PreconditionError);
}

TEST(ScheduleIo, TransferAgainstMissingLayoutRejected) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  EXPECT_THROW(read_schedule(lc, "transfer dir=W comms=W:tau1:lA\n"),
               PreconditionError);
}

TEST(ScheduleIo, FuzzedMutationsNeverCrash) {
  // Random single-character corruptions of a valid file must either parse
  // (rare) or throw PreconditionError — never crash or corrupt state.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const std::string text = write_schedule(*app, g);
  support::Rng rng(2024);
  int parsed = 0, rejected = 0;
  for (int i = 0; i < 200; ++i) {
    std::string mutated = text;
    const std::size_t pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(text.size()) - 1));
    const char replacement = static_cast<char>(rng.uniform_int(32, 126));
    mutated[pos] = replacement;
    try {
      const ScheduleResult r = read_schedule(lc, mutated);
      (void)r;
      ++parsed;
    } catch (const support::Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 200);
  EXPECT_GT(rejected, 0);  // most corruptions are rejected
}

class ScheduleIoRandom : public ::testing::TestWithParam<int> {};

TEST_P(ScheduleIoRandom, GeneratedSystemsRoundTrip) {
  model::GeneratorOptions opt;
  opt.seed = static_cast<std::uint64_t>(GetParam()) * 60013u + 9u;
  opt.num_tasks = 5 + GetParam() % 5;
  opt.num_labels = 4 + GetParam() % 6;
  const auto app = generate_application(opt);
  LetComms lc(*app);
  if (lc.comms_at_s0().empty()) return;
  const ScheduleResult g = GreedyScheduler(lc).build();
  const std::string text = write_schedule(*app, g);
  const ScheduleResult loaded = read_schedule(lc, text);
  EXPECT_EQ(write_schedule(*app, loaded), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleIoRandom, ::testing::Range(0, 8));

}  // namespace
}  // namespace letdma::let
