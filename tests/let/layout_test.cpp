#include "letdma/let/layout.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

TEST(MemoryLayout, RequiredSlotsGlobal) {
  const auto app = testing::make_fig1_app();
  const auto slots =
      MemoryLayout::required_slots(*app, app->platform().global_memory());
  EXPECT_EQ(slots.size(), 6u);  // all six labels are inter-core
  for (const Slot& s : slots) EXPECT_EQ(s.owner.value, -1);
}

TEST(MemoryLayout, RequiredSlotsLocal) {
  const auto app = testing::make_fig1_app();
  // P1 hosts tau1/tau3/tau5: 3 written copies + 3 read copies.
  const auto slots = MemoryLayout::required_slots(
      *app, app->platform().local_memory(model::CoreId{0}));
  EXPECT_EQ(slots.size(), 6u);
}

TEST(MemoryLayout, IntraCoreLabelNeedsNoSlots) {
  const auto app = testing::make_multireader_app();
  // LOCAL reads on the producer's core: no slot for it anywhere; the
  // producer core's memory holds exactly the writer copy.
  const auto local0 = MemoryLayout::required_slots(
      *app, app->platform().local_memory(model::CoreId{0}));
  ASSERT_EQ(local0.size(), 1u);
  EXPECT_EQ(local0[0].owner, app->find_task("PROD"));
}

TEST(MemoryLayout, SetOrderComputesAddresses) {
  const auto app = testing::make_fig1_app();
  MemoryLayout layout(*app);
  const model::MemoryId mg = app->platform().global_memory();
  auto slots = MemoryLayout::required_slots(*app, mg);
  layout.set_order(mg, slots);
  // Addresses accumulate label sizes: lA=2000, lB=4000, lC=8000, ...
  EXPECT_EQ(layout.address(mg, slots[0]), 0);
  EXPECT_EQ(layout.address(mg, slots[1]), 2000);
  EXPECT_EQ(layout.address(mg, slots[2]), 6000);
  EXPECT_EQ(layout.total_bytes(mg), 2000 + 4000 + 8000 + 1000 + 3000 + 6000);
}

TEST(MemoryLayout, PositionAndAdjacency) {
  const auto app = testing::make_fig1_app();
  MemoryLayout layout(*app);
  const model::MemoryId mg = app->platform().global_memory();
  auto slots = MemoryLayout::required_slots(*app, mg);
  std::reverse(slots.begin(), slots.end());
  layout.set_order(mg, slots);
  EXPECT_EQ(layout.position(mg, slots[0]), 0);
  EXPECT_EQ(layout.position(mg, slots[5]), 5);
  EXPECT_TRUE(layout.adjacent(mg, slots[2], slots[3]));
  EXPECT_FALSE(layout.adjacent(mg, slots[3], slots[2]));
  EXPECT_FALSE(layout.adjacent(mg, slots[0], slots[2]));
}

TEST(MemoryLayout, RejectsIncompleteOrWrongOrder) {
  const auto app = testing::make_fig1_app();
  MemoryLayout layout(*app);
  const model::MemoryId mg = app->platform().global_memory();
  auto slots = MemoryLayout::required_slots(*app, mg);
  auto missing = slots;
  missing.pop_back();
  EXPECT_THROW(layout.set_order(mg, missing), support::PreconditionError);
  auto duplicated = slots;
  duplicated.back() = duplicated.front();
  EXPECT_THROW(layout.set_order(mg, duplicated), support::PreconditionError);
}

TEST(MemoryLayout, HasOrderSemantics) {
  const auto app = testing::make_fig1_app();
  MemoryLayout layout(*app);
  const model::MemoryId mg = app->platform().global_memory();
  EXPECT_FALSE(layout.has_order(mg));
  layout.set_order(mg, MemoryLayout::required_slots(*app, mg));
  EXPECT_TRUE(layout.has_order(mg));
}

TEST(MemoryLayout, SlotHelpersForCommunications) {
  const Communication w{Direction::kWrite, model::TaskId{3}, model::LabelId{1}};
  EXPECT_EQ(local_slot_of(w).owner.value, 3);
  EXPECT_EQ(local_slot_of(w).label.value, 1);
  EXPECT_EQ(global_slot_of(w).owner.value, -1);
}

TEST(MemoryLayout, PositionOfUnplacedSlotThrows) {
  const auto app = testing::make_fig1_app();
  MemoryLayout layout(*app);
  const model::MemoryId mg = app->platform().global_memory();
  layout.set_order(mg, MemoryLayout::required_slots(*app, mg));
  EXPECT_THROW(
      layout.position(mg, Slot{model::LabelId{0}, model::TaskId{0}}),
      support::PreconditionError);
}

}  // namespace
}  // namespace letdma::let
