#include "letdma/let/milp_scheduler.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"
#include "letdma/let/validate.hpp"

namespace letdma::let {
namespace {

MilpSchedulerOptions fast_options(MilpObjective obj,
                                  double time_limit_sec = 20.0) {
  MilpSchedulerOptions o;
  o.objective = obj;
  o.solver.time_limit_sec = time_limit_sec;
  return o;
}

void expect_valid(const LetComms& lc, const MilpScheduleResult& r) {
  ASSERT_TRUE(r.feasible()) << "status=" << static_cast<int>(r.status);
  const ValidationReport report =
      validate_schedule(lc, r.schedule->layout, r.schedule->schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(MilpScheduler, PairAppFeasibility) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  MilpScheduler sched(lc, fast_options(MilpObjective::kNone));
  const MilpScheduleResult r = sched.solve();
  EXPECT_EQ(r.status, milp::MilpStatus::kOptimal);
  expect_valid(lc, r);
  EXPECT_EQ(r.dma_transfers_at_s0, 2);  // write, then read
}

TEST(MilpScheduler, PairAppWithoutWarmStart) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  MilpSchedulerOptions o = fast_options(MilpObjective::kNone);
  o.greedy_warm_start = false;
  MilpScheduler sched(lc, o);
  const MilpScheduleResult r = sched.solve();
  EXPECT_EQ(r.status, milp::MilpStatus::kOptimal);
  expect_valid(lc, r);
}

TEST(MilpScheduler, PairAppEagerContiguityMatchesLazy) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  MilpSchedulerOptions o = fast_options(MilpObjective::kMinTransfers);
  o.eager_contiguity = true;
  MilpScheduler sched(lc, o);
  const MilpScheduleResult r = sched.solve();
  EXPECT_EQ(r.status, milp::MilpStatus::kOptimal);
  expect_valid(lc, r);
  EXPECT_EQ(r.dma_transfers_at_s0, 2);
}

TEST(MilpScheduler, MultiReaderValid) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  MilpScheduler sched(lc, fast_options(MilpObjective::kNone));
  const MilpScheduleResult r = sched.solve();
  expect_valid(lc, r);
}

TEST(MilpScheduler, Fig1MinTransfersImprovesOnSeparateTransfers) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  MilpSchedulerOptions o = fast_options(MilpObjective::kMinTransfers, 30.0);
  MilpScheduler sched(lc, o);
  const MilpScheduleResult r = sched.solve();
  expect_valid(lc, r);
  // Greedy alone needs at most 12 transfers (one per communication); the
  // per-core grouping structure admits 4. Anything <= the greedy baseline
  // demonstrates optimization; optimality proves 4.
  const ScheduleResult greedy = GreedyScheduler(lc).build();
  EXPECT_LE(r.dma_transfers_at_s0,
            static_cast<int>(greedy.s0_transfers.size()));
  if (r.status == milp::MilpStatus::kOptimal) {
    EXPECT_EQ(static_cast<int>(r.objective + 0.5), 4);
  }
}

TEST(MilpScheduler, Fig1MinLatencyRatioValid) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  MilpScheduler sched(lc, fast_options(MilpObjective::kMinLatencyRatio, 30.0));
  const MilpScheduleResult r = sched.solve();
  expect_valid(lc, r);
  // The objective is a latency/period ratio in (0, 1].
  EXPECT_GT(r.objective, 0.0);
  EXPECT_LE(r.objective, 1.0);
}

TEST(MilpScheduler, ImpossibleDeadlineInfeasible) {
  const auto app = testing::make_pair_app();
  // Even a single transfer costs lambda_O = 13.36us > 1us.
  app->set_acquisition_deadline(app->find_task("CONS"), support::us(1));
  LetComms lc(*app);
  MilpScheduler sched(lc, fast_options(MilpObjective::kNone));
  const MilpScheduleResult r = sched.solve();
  EXPECT_EQ(r.status, milp::MilpStatus::kInfeasible);
  EXPECT_FALSE(r.feasible());
}

TEST(MilpScheduler, NoCommunicationsRejected) {
  model::Application app{model::Platform(2)};
  app.add_task("a", support::ms(10), support::ms(1), model::CoreId{0});
  app.finalize();
  LetComms lc(app);
  EXPECT_THROW(MilpScheduler sched(lc, {}), support::PreconditionError);
}

TEST(MilpScheduler, MaxTransfersCapRespected) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  MilpSchedulerOptions o = fast_options(MilpObjective::kNone, 30.0);
  o.max_transfers = 6;
  MilpScheduler sched(lc, o);
  const MilpScheduleResult r = sched.solve();
  if (r.feasible()) {
    EXPECT_LE(r.dma_transfers_at_s0, 6);
    expect_valid(lc, r);
  }
}

TEST(MilpScheduler, SameCoreReadersWithEagerContiguity) {
  // Two readers of one label on the same core produce two same-label read
  // communications in one group; Constraint-6 witnesses must skip the
  // self-pair (regression: used to hit a missing AD variable).
  model::Application app{model::Platform(2)};
  const auto t1 = app.add_task("t1", support::ms(10), support::ms(2),
                               model::CoreId{0});
  const auto t2 = app.add_task("t2", support::ms(5), support::ms(1),
                               model::CoreId{1});
  const auto t3 = app.add_task("t3", support::ms(20), support::ms(4),
                               model::CoreId{0});
  app.add_label("x", 2000, t1, {t2});
  app.add_label("y", 1000, t2, {t1, t3});
  app.add_label("z", 4000, t3, {t2});
  app.finalize();
  let::LetComms lc(app);
  for (const bool eager : {false, true}) {
    MilpSchedulerOptions o = fast_options(MilpObjective::kMinTransfers, 20.0);
    o.eager_contiguity = eager;
    MilpScheduler sched(lc, o);
    const MilpScheduleResult r = sched.solve();
    ASSERT_TRUE(r.feasible()) << "eager=" << eager;
    const ValidationReport report =
        validate_schedule(lc, r.schedule->layout, r.schedule->schedule);
    EXPECT_TRUE(report.ok()) << report.summary();
  }
}

TEST(MilpScheduler, ExactLastReadMatchesRelaxation) {
  // The exact-max encoding of Constraint 3 and the sound relaxation must
  // agree on the optimal objective (the relaxation is tight under
  // minimization pressure).
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  double objectives[2] = {0, 0};
  for (const bool exact : {false, true}) {
    MilpSchedulerOptions o = fast_options(MilpObjective::kMinTransfers, 10.0);
    o.exact_last_read = exact;
    MilpScheduler sched(lc, o);
    const MilpScheduleResult r = sched.solve();
    ASSERT_TRUE(r.feasible()) << "exact=" << exact;
    expect_valid(lc, r);
    objectives[exact ? 1 : 0] = r.objective;
  }
  EXPECT_NEAR(objectives[0], objectives[1], 1e-6);
}

TEST(MilpScheduler, ExactLastReadAcceptsWarmStart) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  MilpSchedulerOptions o = fast_options(MilpObjective::kNone);
  o.exact_last_read = true;
  MilpScheduler sched(lc, o);
  const MilpScheduleResult r = sched.solve();
  // With the warm start accepted, a feasibility problem closes instantly.
  EXPECT_EQ(r.status, milp::MilpStatus::kOptimal);
  EXPECT_LE(r.stats.nodes_explored, 2);
}

TEST(MilpScheduler, ModelSizeReported) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  MilpScheduler sched(lc, fast_options(MilpObjective::kNone));
  EXPECT_GT(sched.model_vars(), 0);
  EXPECT_GT(sched.model_rows(), 0);
}

TEST(MilpScheduler, LatencyObjectiveNotWorseThanGreedy) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult greedy = GreedyScheduler(lc).build();
  const auto greedy_wc =
      worst_case_latencies(lc, greedy.schedule, ReadinessSemantics::kProposed);
  double greedy_ratio = 0;
  for (int task = 0; task < static_cast<int>(greedy_wc.size()); ++task) {
    greedy_ratio = std::max(
        greedy_ratio,
        static_cast<double>(greedy_wc[static_cast<std::size_t>(task)]) /
            static_cast<double>(app->task(model::TaskId{task}).period));
  }
  MilpScheduler sched(lc, fast_options(MilpObjective::kMinLatencyRatio, 30.0));
  const MilpScheduleResult r = sched.solve();
  ASSERT_TRUE(r.feasible());
  EXPECT_LE(r.objective, greedy_ratio + 1e-6);
}

}  // namespace
}  // namespace letdma::let
