#include "letdma/let/footprint.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/greedy.hpp"

namespace letdma::let {
namespace {

TEST(Footprint, PerMemoryTotals) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const auto fps = footprint(g.layout);
  ASSERT_EQ(fps.size(), 3u);  // M_1, M_2, M_G
  // Global memory holds each label once: 2000+4000+8000+1000+3000+6000.
  const auto global = fps.back();
  EXPECT_TRUE(app->platform().is_global(global.memory));
  EXPECT_EQ(global.bytes, 24000);
  EXPECT_EQ(global.slots, 6);
  // Each local memory holds 3 written + 3 read copies.
  EXPECT_EQ(fps[0].slots, 6);
  EXPECT_EQ(fps[1].slots, 6);
  EXPECT_EQ(fps[0].bytes + fps[1].bytes, 2 * 24000);
}

TEST(Footprint, SkipsEmptyMemories) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  for (const MemoryFootprint& fp : footprint(g.layout)) {
    EXPECT_GT(fp.slots, 0);
    EXPECT_GT(fp.bytes, 0);
  }
}

TEST(Footprint, AddressMapListsEverySlot) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const std::string map = render_address_map(g.layout);
  EXPECT_NE(map.find("M_1"), std::string::npos);
  EXPECT_NE(map.find("M_G"), std::string::npos);
  EXPECT_NE(map.find("0x000000"), std::string::npos);
  for (int l = 0; l < app->num_labels(); ++l) {
    EXPECT_NE(map.find(app->label(model::LabelId{l}).name),
              std::string::npos);
  }
  EXPECT_NE(map.find("(copy of tau1)"), std::string::npos);
}

TEST(Footprint, AddressesAreContiguous) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const model::MemoryId mg = app->platform().global_memory();
  std::int64_t expected = 0;
  for (const Slot& s : g.layout.order(mg)) {
    EXPECT_EQ(g.layout.address(mg, s), expected);
    expected += app->label(s.label).size_bytes;
  }
}

}  // namespace
}  // namespace letdma::let
