// Regression tests for the eta-function reading documented in eta.hpp: the
// closed forms, applied unconditionally as *sets* of instants, coincide
// with the branch forms of Eqs. (1)-(2) for every period relation — the
// paper's branch is an evaluation shortcut, not a semantic difference.
#include <gtest/gtest.h>

#include <set>

#include "letdma/let/eta.hpp"
#include "letdma/support/math.hpp"

namespace letdma::let {
namespace {

using support::ms;
using support::Time;

/// Write instants computed straight from the closed form
/// floor(v*T_c/T_p)*T_p with v over consumer jobs (no branch).
std::set<Time> closed_form_writes(Time tp, Time tc, Time h) {
  std::set<Time> out;
  for (Time v = 0; v < h / tc; ++v) {
    out.insert((support::floor_div(v * tc, tp) * tp) % h);
  }
  return out;
}

/// Read instants from ceil(v*T_p/T_c)*T_c with v over producer jobs.
std::set<Time> closed_form_reads(Time tp, Time tc, Time h) {
  std::set<Time> out;
  for (Time v = 0; v < h / tp; ++v) {
    out.insert((support::ceil_div(v * tp, tc) * tc) % h);
  }
  return out;
}

class EtaEquivalence
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EtaEquivalence, WriteSetsMatchClosedForm) {
  const auto [tp_ms, tc_ms] = GetParam();
  const Time tp = ms(tp_ms), tc = ms(tc_ms);
  const Time h = support::lcm64(tp, tc);
  const auto lib = write_instants(tp, tc, h);
  const std::set<Time> expect = closed_form_writes(tp, tc, h);
  EXPECT_EQ(std::set<Time>(lib.begin(), lib.end()), expect);
}

TEST_P(EtaEquivalence, ReadSetsMatchClosedForm) {
  const auto [tp_ms, tc_ms] = GetParam();
  const Time tp = ms(tp_ms), tc = ms(tc_ms);
  const Time h = support::lcm64(tp, tc);
  const auto lib = read_instants(tp, tc, h);
  const std::set<Time> expect = closed_form_reads(tp, tc, h);
  EXPECT_EQ(std::set<Time>(lib.begin(), lib.end()), expect);
}

TEST_P(EtaEquivalence, WritesAlignToProducerReleases) {
  const auto [tp_ms, tc_ms] = GetParam();
  const Time tp = ms(tp_ms), tc = ms(tc_ms);
  const Time h = support::lcm64(tp, tc);
  for (const Time t : write_instants(tp, tc, h)) {
    EXPECT_EQ(t % tp, 0) << "write off a producer release";
  }
  for (const Time t : read_instants(tp, tc, h)) {
    EXPECT_EQ(t % tc, 0) << "read off a consumer release";
  }
}

TEST_P(EtaEquivalence, EveryConsumerJobSeesAFreshEnoughWrite) {
  // Semantic check of the skip rule: for every consumer release r there is
  // a write at the latest producer release <= r.
  const auto [tp_ms, tc_ms] = GetParam();
  const Time tp = ms(tp_ms), tc = ms(tc_ms);
  const Time h = support::lcm64(tp, tc);
  const auto w = write_instants(tp, tc, h);
  const std::set<Time> writes(w.begin(), w.end());
  for (Time r = 0; r < h; r += tc) {
    const Time last_release = (r / tp) * tp;
    EXPECT_TRUE(writes.count(last_release))
        << "consumer release " << r << " lacks the write at "
        << last_release;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EtaEquivalence,
    ::testing::Values(std::pair{5, 15}, std::pair{15, 5}, std::pair{10, 10},
                      std::pair{10, 15}, std::pair{15, 10}, std::pair{33, 66},
                      std::pair{66, 33}, std::pair{7, 13}, std::pair{13, 7},
                      std::pair{5, 400}, std::pair{400, 5},
                      std::pair{33, 15}));

}  // namespace
}  // namespace letdma::let
