#include "letdma/let/repair.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "../test_fixtures.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/diff.hpp"

namespace letdma::let {
namespace {

using model::CoreId;
using model::TaskId;
using support::ms;

/// Fig.1 system with lB resized and lF removed / lG added on demand.
std::unique_ptr<model::Application> make_variant(std::int64_t lb_bytes,
                                                 bool drop_lf = false,
                                                 bool add_lg = false) {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const TaskId t1 = app->add_task("tau1", ms(10), ms(2), CoreId{0});
  const TaskId t3 = app->add_task("tau3", ms(20), ms(4), CoreId{0});
  const TaskId t5 = app->add_task("tau5", ms(40), ms(8), CoreId{0});
  const TaskId t2 = app->add_task("tau2", ms(5), ms(1), CoreId{1});
  const TaskId t4 = app->add_task("tau4", ms(20), ms(4), CoreId{1});
  const TaskId t6 = app->add_task("tau6", ms(40), ms(8), CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", lb_bytes, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  if (!drop_lf) app->add_label("lF", 6000, t6, {t5});
  if (add_lg) app->add_label("lG", 1500, t1, {t4});
  app->finalize();
  return app;
}

TEST(WarmStart, IdentityTranslationKeepsEveryCommAndGroup) {
  const auto app = testing::make_fig1_app();
  const LetComms comms(*app);
  const CompiledComms compiled(comms);
  const ScheduleResult prev = GreedyScheduler::best_latency_ratio(comms);
  WarmStartStats stats;
  const ScheduleResult seeded = warm_start(compiled, prev, nullptr, &stats);
  EXPECT_EQ(stats.prev_groups,
            static_cast<int>(prev.s0_transfers.size()));
  EXPECT_EQ(stats.groups_kept, stats.prev_groups);
  EXPECT_EQ(stats.comms_carried,
            static_cast<int>(comms.comms_at_s0().size()));
  EXPECT_EQ(stats.comms_dropped, 0);
  EXPECT_EQ(stats.comms_added, 0);
  EXPECT_EQ(seeded.s0_transfers.size(), prev.s0_transfers.size());
  EXPECT_TRUE(
      validate_schedule(comms, seeded.layout, seeded.schedule).ok());
}

TEST(WarmStart, TranslatesAcrossALabelResize) {
  const auto before = make_variant(4000);
  const auto after = make_variant(9000);
  const LetComms before_comms(*before);
  const LetComms after_comms(*after);
  const CompiledComms compiled(after_comms);
  const ScheduleResult prev =
      GreedyScheduler::best_latency_ratio(before_comms);
  const model::ApplicationDiff d = model::diff(*before, *after);
  WarmStartStats stats;
  const ScheduleResult seeded = warm_start(compiled, prev, &d, &stats);
  // Same comm topology: everything carries, nothing is dropped or added.
  EXPECT_EQ(stats.comms_carried,
            static_cast<int>(after_comms.comms_at_s0().size()));
  EXPECT_EQ(stats.comms_dropped, 0);
  EXPECT_EQ(stats.comms_added, 0);
  // The materialized transfers reflect the *new* label size: whichever
  // group carries an lB communication moves at least its 9000 bytes.
  const model::LabelId lb{1};  // "lB" is the second label in both
  bool saw_lb = false;
  for (const DmaTransfer& t : seeded.s0_transfers) {
    for (const Communication& c : t.comms) {
      if (c.label == lb) {
        saw_lb = true;
        EXPECT_GE(t.bytes, 9000);
      }
    }
  }
  EXPECT_TRUE(saw_lb);
  EXPECT_TRUE(
      validate_schedule(after_comms, seeded.layout, seeded.schedule).ok());
}

TEST(WarmStart, DropsRemovedCommsAndAddsNewOnes) {
  const auto before = make_variant(4000);
  const auto after = make_variant(4000, /*drop_lf=*/true, /*add_lg=*/true);
  const LetComms before_comms(*before);
  const LetComms after_comms(*after);
  const CompiledComms compiled(after_comms);
  const ScheduleResult prev =
      GreedyScheduler::best_latency_ratio(before_comms);
  const model::ApplicationDiff d = model::diff(*before, *after);
  WarmStartStats stats;
  const ScheduleResult seeded = warm_start(compiled, prev, &d, &stats);
  EXPECT_GT(stats.comms_dropped, 0);  // lF's comms are gone
  EXPECT_GT(stats.comms_added, 0);    // lG's comms are new
  // Everything the new instance requires is covered exactly once.
  std::size_t covered = 0;
  for (const DmaTransfer& t : seeded.s0_transfers) covered += t.comms.size();
  EXPECT_EQ(covered, after_comms.comms_at_s0().size());
  EXPECT_TRUE(
      validate_schedule(after_comms, seeded.layout, seeded.schedule).ok());
}

TEST(Repair, ImprovesFromTheTranslatedSeed) {
  const auto before = make_variant(4000);
  const auto after = make_variant(9000);
  const LetComms before_comms(*before);
  const LetComms after_comms(*after);
  const CompiledComms compiled(after_comms);
  const ScheduleResult prev =
      GreedyScheduler::best_latency_ratio(before_comms);
  const model::ApplicationDiff d = model::diff(*before, *after);
  const RepairResult r = repair(compiled, prev, &d);
  ASSERT_TRUE(r.repaired);
  EXPECT_TRUE(validate_schedule(after_comms, r.result.schedule.layout,
                                r.result.schedule.schedule)
                  .ok());
  EXPECT_GE(r.result.evaluations, 0);
  // The search never returns something worse than its seed.
  WarmStartStats stats;
  const ScheduleResult seeded = warm_start(compiled, prev, &d, &stats);
  const auto seed_wc = worst_case_latencies(
      after_comms, seeded.schedule, ReadinessSemantics::kProposed);
  const auto out_wc = worst_case_latencies(
      after_comms, r.result.schedule.schedule, ReadinessSemantics::kProposed);
  double seed_worst = 0.0, out_worst = 0.0;
  for (int t = 0; t < static_cast<int>(seed_wc.size()); ++t) {
    const double period = static_cast<double>(
        after->task(model::TaskId{t}).period);
    seed_worst = std::max(
        seed_worst,
        static_cast<double>(seed_wc[static_cast<std::size_t>(t)]) / period);
    out_worst = std::max(
        out_worst,
        static_cast<double>(out_wc[static_cast<std::size_t>(t)]) / period);
  }
  EXPECT_LE(out_worst, seed_worst + 1e-12);
}

TEST(Repair, IdentityRepairIsTriviallyFeasible) {
  const auto app = testing::make_fig1_app();
  const LetComms comms(*app);
  const CompiledComms compiled(comms);
  const ScheduleResult prev = GreedyScheduler::best_latency_ratio(comms);
  const RepairResult r = repair(compiled, prev);
  ASSERT_TRUE(r.repaired);
  EXPECT_TRUE(validate_schedule(comms, r.result.schedule.layout,
                                r.result.schedule.schedule)
                  .ok());
}

}  // namespace
}  // namespace letdma::let
