// Consistency checks between the MILP's reported objective and the
// quantities recomputed from the extracted schedule — guards against
// drift between the formulation (Constraints 1-10 arithmetic) and the
// analytical LatencyModel.
#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

TEST(MilpConsistency, DmatObjectiveBoundsExtractedLastReadIndex) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  MilpSchedulerOptions opt;
  opt.objective = MilpObjective::kMinTransfers;
  opt.solver.time_limit_sec = 15;
  const auto r = MilpScheduler(lc, opt).solve();
  ASSERT_TRUE(r.feasible());
  // The extracted schedule's last anchor index (1-based, after compacting
  // empty transfers) can only be <= the reported objective (empty indices
  // inflate RGI conservatively, never the other way).
  int last_read_index = 0;
  const auto& transfers = r.schedule->s0_transfers;
  for (std::size_t g = 0; g < transfers.size(); ++g) {
    for (const Communication& c : transfers[g].comms) {
      if (c.dir == Direction::kRead) {
        last_read_index =
            std::max(last_read_index, static_cast<int>(g) + 1);
      }
    }
  }
  EXPECT_LE(last_read_index, static_cast<int>(r.objective + 0.5));
}

TEST(MilpConsistency, DelObjectiveBoundsRecomputedRatio) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  MilpSchedulerOptions opt;
  opt.objective = MilpObjective::kMinLatencyRatio;
  opt.solver.time_limit_sec = 15;
  const auto r = MilpScheduler(lc, opt).solve();
  ASSERT_TRUE(r.feasible());
  const auto wc = worst_case_latencies(lc, r.schedule->schedule,
                                       ReadinessSemantics::kProposed);
  double recomputed = 0;
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    recomputed = std::max(
        recomputed, static_cast<double>(wc[static_cast<std::size_t>(task)]) /
                        static_cast<double>(
                            app->task(model::TaskId{task}).period));
  }
  // The MILP's lambda arithmetic counts empty transfer indices, so the
  // recomputed (compacted) ratio can only be better or equal.
  EXPECT_LE(recomputed, r.objective + 1e-9);
}

TEST(MilpConsistency, DeadlineBoundIsEnforcedInExtraction) {
  // Set gamma for every task to the greedy latency; the MILP must return
  // a schedule whose latencies stay within those gammas.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult greedy = GreedyScheduler(lc).build();
  const auto gwc = worst_case_latencies(lc, greedy.schedule,
                                        ReadinessSemantics::kProposed);
  for (int task = 0; task < static_cast<int>(gwc.size()); ++task) {
    const auto lam = gwc[static_cast<std::size_t>(task)];
    if (lam > 0) {
      app->set_acquisition_deadline(model::TaskId{task}, lam);
    }
  }
  LetComms lc2(*app);
  MilpSchedulerOptions opt;
  opt.objective = MilpObjective::kNone;
  opt.solver.time_limit_sec = 15;
  const auto r = MilpScheduler(lc2, opt).solve();
  ASSERT_TRUE(r.feasible());
  const auto wc = worst_case_latencies(lc2, r.schedule->schedule,
                                       ReadinessSemantics::kProposed);
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    const auto& gamma =
        app->task(model::TaskId{task}).acquisition_deadline;
    if (gamma) {
      EXPECT_LE(wc[static_cast<std::size_t>(task)], *gamma)
          << app->task(model::TaskId{task}).name;
    }
  }
}

TEST(MilpConsistency, TransferCountMatchesReport) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  MilpSchedulerOptions opt;
  opt.solver.time_limit_sec = 10;
  const auto r = MilpScheduler(lc, opt).solve();
  ASSERT_TRUE(r.feasible());
  EXPECT_EQ(r.dma_transfers_at_s0,
            static_cast<int>(r.schedule->s0_transfers.size()));
}

}  // namespace
}  // namespace letdma::let
