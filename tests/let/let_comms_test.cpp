#include "letdma/let/let_comms.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

using support::ms;

TEST(LetComms, PairAppCalendar) {
  const auto app = testing::make_pair_app(ms(10), ms(10));
  LetComms lc(*app);
  // Equal periods: one write and one read at every release.
  EXPECT_EQ(lc.required_instants().size(), 1u);  // H == 10ms, only t=0
  const auto s0 = lc.comms_at_s0();
  ASSERT_EQ(s0.size(), 2u);
  EXPECT_EQ(s0[0].dir, Direction::kWrite);
  EXPECT_EQ(s0[1].dir, Direction::kRead);
}

TEST(LetComms, OversampledProducerSkipsWrites) {
  const auto app = testing::make_pair_app(ms(5), ms(15));
  LetComms lc(*app);
  // H = 15ms; writes at 0 only (within [0,15): consumer job 0);
  // producer job indices for consumer jobs land at t=0.
  int writes = 0, reads = 0;
  for (const Time t : lc.required_instants()) {
    for (const Communication& c : lc.comms_at(t)) {
      (c.dir == Direction::kWrite ? writes : reads) += 1;
    }
  }
  EXPECT_EQ(writes, 1);
  EXPECT_EQ(reads, 1);
}

TEST(LetComms, SubsetPropertyCOfT) {
  // C(t) is a subset of C(s0) for every t (synchronous release).
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const auto s0 = lc.comms_at_s0();
  const std::set<Communication> s0_set(s0.begin(), s0.end());
  for (const Time t : lc.required_instants()) {
    for (const Communication& c : lc.comms_at(t)) {
      EXPECT_TRUE(s0_set.count(c) > 0)
          << to_string(*app, c) << " at t=" << t;
    }
  }
}

TEST(LetComms, Fig1S0HasAllTwelveComms) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  // 6 labels, each with one writer and one reader: 12 communications.
  EXPECT_EQ(lc.comms_at_s0().size(), 12u);
}

TEST(LetComms, AlgorithmOneGroupsPerTask) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const model::TaskId t1 = app->find_task("tau1");
  const auto w = lc.writes_at(0, t1);
  const auto r = lc.reads_at(0, t1);
  ASSERT_EQ(w.size(), 1u);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(app->label(w[0].label).name, "lA");
  EXPECT_EQ(app->label(r[0].label).name, "lD");
}

TEST(LetComms, HStarIsLcmOfPartners) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  // tau1 (10ms) exchanges with tau2 (5ms): H* = lcm(10,5) = 10ms.
  EXPECT_EQ(lc.h_star(app->find_task("tau1")), ms(10));
  // tau5 (40ms) with tau6 (40ms): H* = 40ms.
  EXPECT_EQ(lc.h_star(app->find_task("tau5")), ms(40));
}

TEST(LetComms, MultiReaderLabelProducesOneWriteManyReads) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const auto s0 = lc.comms_at_s0();
  int writes = 0, reads = 0;
  for (const Communication& c : s0) {
    (c.dir == Direction::kWrite ? writes : reads) += 1;
  }
  EXPECT_EQ(writes, 1);  // single write despite two inter-core readers
  EXPECT_EQ(reads, 2);
}

TEST(LetComms, IndexAtS0Roundtrip) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const auto s0 = lc.comms_at_s0();
  for (std::size_t i = 0; i < s0.size(); ++i) {
    EXPECT_EQ(lc.index_at_s0(s0[i]), static_cast<int>(i));
  }
  EXPECT_THROW(
      lc.index_at_s0({Direction::kWrite, model::TaskId{1}, model::LabelId{0}}),
      support::PreconditionError);
}

TEST(LetComms, CommunicatingTasksOfFig1) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  EXPECT_EQ(lc.communicating_tasks().size(), 6u);
}

TEST(LetComms, RequiresFinalizedApp) {
  model::Application app{model::Platform(2)};
  app.add_task("a", ms(10), ms(1), model::CoreId{0});
  EXPECT_THROW(LetComms lc(app), support::PreconditionError);
}

TEST(LetComms, NonCommunicatingAppHasEmptyCalendar) {
  model::Application app{model::Platform(2)};
  app.add_task("a", ms(10), ms(1), model::CoreId{0});
  app.add_task("b", ms(20), ms(1), model::CoreId{1});
  app.finalize();
  LetComms lc(app);
  EXPECT_TRUE(lc.required_instants().empty());
  EXPECT_TRUE(lc.comms_at_s0().empty());
}

}  // namespace
}  // namespace letdma::let
