#include "letdma/let/validate.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"
#include "letdma/let/greedy.hpp"

namespace letdma::let {
namespace {

TEST(Validate, AcceptsGreedySchedules) {
  std::vector<std::unique_ptr<model::Application>> apps;
  apps.push_back(testing::make_pair_app());
  apps.push_back(testing::make_fig1_app());
  apps.push_back(testing::make_multireader_app());
  for (const auto& app : apps) {
    LetComms lc(*app);
    const ScheduleResult g = GreedyScheduler(lc).build();
    const ValidationReport r = validate_schedule(lc, g.layout, g.schedule);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_EQ(r.summary(), "OK");
  }
}

TEST(Validate, DetectsMissingInstant) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  ScheduleResult g = GreedyScheduler(lc).build();
  TransferSchedule partial;
  partial.set_instant(0, g.schedule.at(0));  // drop every other instant
  const ValidationReport r = validate_schedule(lc, g.layout, partial);
  EXPECT_FALSE(r.ok());
}

TEST(Validate, DetectsPropertyTwoViolation) {
  // Swap the write and the read of the pair app: read before write.
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  ScheduleResult g = GreedyScheduler(lc).build();
  ASSERT_EQ(g.s0_transfers.size(), 2u);
  std::swap(g.s0_transfers[0], g.s0_transfers[1]);
  TransferSchedule bad;
  bad.set_instant(0, g.s0_transfers);
  const ValidationReport r = validate_schedule(lc, g.layout, bad);
  ASSERT_FALSE(r.ok());
  bool mentions_p2 = false;
  for (const auto& s : r.issues) {
    mentions_p2 |= s.find("Property 2") != std::string::npos;
  }
  EXPECT_TRUE(mentions_p2) << r.summary();
}

TEST(Validate, DetectsDuplicateCarriage) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  ScheduleResult g = GreedyScheduler(lc).build();
  auto transfers = g.s0_transfers;
  transfers.push_back(transfers[0]);  // write carried twice
  TransferSchedule bad;
  bad.set_instant(0, transfers);
  const ValidationReport r = validate_schedule(lc, g.layout, bad);
  EXPECT_FALSE(r.ok());
}

TEST(Validate, DetectsDeadlineMiss) {
  const auto app = testing::make_pair_app();
  app->set_acquisition_deadline(app->find_task("CONS"), support::us(1));
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const ValidationReport r = validate_schedule(lc, g.layout, g.schedule);
  ASSERT_FALSE(r.ok());
  bool mentions_deadline = false;
  for (const auto& s : r.issues) {
    mentions_deadline |= s.find("acquisition deadline") != std::string::npos;
  }
  EXPECT_TRUE(mentions_deadline);
  // The same schedule passes when deadline checking is disabled.
  ValidationOptions opt;
  opt.check_deadlines = false;
  EXPECT_TRUE(validate_schedule(lc, g.layout, g.schedule, opt).ok());
}

TEST(Validate, DetectsPropertyThreeViolation) {
  // A huge label on a fast pair leaves no room before the next instant.
  const auto app = testing::make_pair_app(support::ms(1), support::ms(1),
                                          /*label_bytes=*/10'000'000);
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const ValidationReport r = validate_schedule(lc, g.layout, g.schedule);
  ASSERT_FALSE(r.ok());
  bool mentions_p3 = false;
  for (const auto& s : r.issues) {
    mentions_p3 |= s.find("Property 3") != std::string::npos;
  }
  EXPECT_TRUE(mentions_p3) << r.summary();
}

TEST(Validate, MissingLayoutReported) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  MemoryLayout empty(*app);
  const ValidationReport r = validate_schedule(lc, empty, g.schedule);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.issues[0].find("no slot order"), std::string::npos);
}

TEST(Validate, DetectsCorruptedTransferMetadata) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  ScheduleResult g = GreedyScheduler(lc).build();
  auto transfers = g.s0_transfers;
  transfers[0].bytes += 1;  // inconsistent with the layout
  TransferSchedule bad = g.schedule;
  bad.set_instant(0, transfers);
  const ValidationReport r = validate_schedule(lc, g.layout, bad);
  ASSERT_FALSE(r.ok());
  bool mentions_meta = false;
  for (const auto& s : r.issues) {
    mentions_meta |= s.find("metadata") != std::string::npos;
  }
  EXPECT_TRUE(mentions_meta) << r.summary();
}

TEST(Validate, DetectsNonContiguousTransfer) {
  // Hand-build a transfer whose labels are not adjacent in memory by
  // bypassing make_transfer.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  ScheduleResult g = GreedyScheduler(lc).build();
  // Merge two single-comm write transfers that are NOT contiguous.
  std::vector<DmaTransfer> transfers = g.s0_transfers;
  DmaTransfer* first_w = nullptr;
  DmaTransfer* second_w = nullptr;
  for (DmaTransfer& t : transfers) {
    if (t.dir != Direction::kWrite) continue;
    if (!first_w) {
      first_w = &t;
    } else if (t.local_mem == first_w->local_mem &&
               t.global_addr != first_w->global_addr + first_w->bytes) {
      second_w = &t;
      break;
    }
  }
  if (first_w == nullptr || second_w == nullptr) {
    GTEST_SKIP() << "no mergeable non-contiguous pair in this layout";
  }
  first_w->comms.insert(first_w->comms.end(), second_w->comms.begin(),
                        second_w->comms.end());
  first_w->bytes += second_w->bytes;
  transfers.erase(
      std::remove_if(transfers.begin(), transfers.end(),
                     [&](const DmaTransfer& t) { return &t == second_w; }),
      transfers.end());
  // Rebuild: erase via value comparison is fiddly with pointers; simpler
  // path: drop the second transfer by index.
  TransferSchedule bad = g.schedule;
  bad.set_instant(0, transfers);
  const ValidationReport r = validate_schedule(lc, g.layout, bad);
  EXPECT_FALSE(r.ok());
}

TEST(Validate, FlagsTheorem1ViolationFromHoleyTransfer) {
  // A transfer [A, B, C] where B is skipped at t=20ms splits into two
  // pieces there; with tiny payloads the extra per-transfer overhead makes
  // lambda(t) exceed lambda(s0) — exactly what Constraint 6 exists to
  // prevent and what the validator must flag.
  model::Application app{model::Platform(2)};
  const auto p = app.add_task("p", support::ms(10), support::ms(1),
                              model::CoreId{0});
  const auto cA = app.add_task("cA", support::ms(10), support::ms(1),
                               model::CoreId{1});
  const auto cB = app.add_task("cB", support::ms(20), support::ms(1),
                               model::CoreId{1});
  app.add_label("A", 16, p, {cA});
  app.add_label("B", 16, p, {cB});
  app.add_label("C", 16, p, {cA});
  app.finalize();
  LetComms lc(app);
  // Canonical layout: A, B, C contiguous in M_G; read copies in M_2 are
  // (A,cA), (B,cB), (C,cA) — also in label order.
  MemoryLayout layout(app);
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    auto slots = MemoryLayout::required_slots(app, model::MemoryId{m});
    if (!slots.empty()) layout.set_order(model::MemoryId{m}, slots);
  }
  // s0 order: writes of A and B merged (so B's absence at t=10ms does NOT
  // save a transfer), the write of C alone, then ONE read transfer
  // carrying A, B and C together.
  std::vector<Communication> wAB, wC, reads;
  for (const Communication& c : lc.comms_at_s0()) {
    if (c.dir == Direction::kRead) {
      reads.push_back(c);
    } else if (app.label(c.label).name == "C") {
      wC.push_back(c);
    } else {
      wAB.push_back(c);
    }
  }
  std::vector<DmaTransfer> s0;
  s0.push_back(make_transfer(layout, wAB));
  s0.push_back(make_transfer(layout, wC));
  s0.push_back(make_transfer(layout, reads));
  const TransferSchedule schedule = derive_schedule(lc, layout, s0);
  // At t=10ms B is skipped: the merged write shrinks to {A} (still one
  // transfer) but the read run [A, _, C] splits into two pieces — the
  // instant pays one MORE lambda_O than s0 (4 transfers vs 3).
  ASSERT_TRUE(schedule.has_instant(support::ms(10)));
  EXPECT_EQ(schedule.at(support::ms(10)).size(), 4u);
  EXPECT_EQ(schedule.at(0).size(), 3u);
  const ValidationReport r = validate_schedule(lc, layout, schedule);
  ASSERT_FALSE(r.ok());
  bool mentions_theorem = false;
  for (const auto& s : r.issues) {
    mentions_theorem |= s.find("Theorem 1") != std::string::npos;
  }
  EXPECT_TRUE(mentions_theorem) << r.summary();
}

TEST(Validate, GiottoSemanticsOptionUsed) {
  // Giotto semantics inflate latencies; with a deadline between the
  // proposed and the Giotto value, only the Giotto check fails.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const LatencyModel lat(app->platform());
  const model::TaskId t2 = app->find_task("tau2");
  const Time proposed = lat.task_latency(g.schedule.at(0), t2,
                                         ReadinessSemantics::kProposed);
  const Time giotto = lat.task_latency(g.schedule.at(0), t2,
                                       ReadinessSemantics::kGiotto);
  ASSERT_LT(proposed, giotto);
  app->set_acquisition_deadline(t2, (proposed + giotto) / 2);
  ValidationOptions opt;
  opt.semantics = ReadinessSemantics::kProposed;
  EXPECT_TRUE(validate_schedule(lc, g.layout, g.schedule, opt).ok());
  opt.semantics = ReadinessSemantics::kGiotto;
  EXPECT_FALSE(validate_schedule(lc, g.layout, g.schedule, opt).ok());
}

}  // namespace
}  // namespace letdma::let
