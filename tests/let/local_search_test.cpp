#include "letdma/let/local_search.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

double ratio_of(const model::Application& app, const LetComms& lc,
                const ScheduleResult& r) {
  const auto wc =
      worst_case_latencies(lc, r.schedule, ReadinessSemantics::kProposed);
  double worst = 0;
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    worst = std::max(
        worst, static_cast<double>(wc[static_cast<std::size_t>(task)]) /
                   static_cast<double>(app.task(model::TaskId{task}).period));
  }
  return worst;
}

TEST(LocalSearch, ImprovesGiottoAOrdering) {
  // Starting from the worst ordering (Giotto-A, one transfer per copy) the
  // search must find a strictly better latency configuration.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult start = baseline::giotto_dma_a(lc);
  const double start_ratio = ratio_of(*app, lc, start);
  const LocalSearchResult r = improve_schedule(lc, start);
  EXPECT_LT(r.objective, start_ratio);
  EXPECT_GT(r.improvements, 0);
  const ValidationReport rep =
      validate_schedule(lc, r.schedule.layout, r.schedule.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(LocalSearch, NeverWorseThanRebuiltStart) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult start = GreedyScheduler(lc).build();
  const LocalSearchResult r = improve_schedule(lc, start);
  EXPECT_LE(r.objective, ratio_of(*app, lc, start) + 1e-9);
}

TEST(LocalSearch, MinTransfersGoalReducesTransferCount) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult start = baseline::giotto_dma_a(lc);
  LocalSearchOptions opt;
  opt.goal = LocalSearchGoal::kMinTransfers;
  const LocalSearchResult r = improve_schedule(lc, start, opt);
  EXPECT_LT(r.schedule.s0_transfers.size(), start.s0_transfers.size());
  const ValidationReport rep =
      validate_schedule(lc, r.schedule.layout, r.schedule.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(LocalSearch, RespectsEvaluationBudget) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult start = baseline::giotto_dma_a(lc);
  LocalSearchOptions opt;
  opt.max_evaluations = 10;
  const LocalSearchResult r = improve_schedule(lc, start, opt);
  EXPECT_LE(r.evaluations, 10);
}

TEST(LocalSearch, HonoursAcquisitionDeadlines) {
  // With a deadline only slightly above the greedy latency, every accepted
  // move must keep the configuration deadline-feasible.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult greedy = GreedyScheduler(lc).build();
  const auto wc = worst_case_latencies(lc, greedy.schedule,
                                       ReadinessSemantics::kProposed);
  const int t2 = app->find_task("tau2").value;
  app->set_acquisition_deadline(model::TaskId{t2}, wc.at(t2) + 1000);
  const LocalSearchResult r = improve_schedule(lc, greedy);
  ValidationOptions vopt;  // default includes the deadline check
  const ValidationReport rep =
      validate_schedule(lc, r.schedule.layout, r.schedule.schedule, vopt);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(LocalSearch, TransferCountRespectsGroupLowerBound) {
  // Transfers can never merge across (memory, direction) groups, so the
  // number of distinct groups at s0 is a hard lower bound.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  std::set<std::pair<int, int>> groups;
  for (const Communication& c : lc.comms_at_s0()) {
    groups.insert({local_memory_of(*app, c).value,
                   c.dir == Direction::kWrite ? 0 : 1});
  }
  LocalSearchOptions opt;
  opt.goal = LocalSearchGoal::kMinTransfers;
  opt.max_evaluations = 2000;
  const LocalSearchResult r =
      improve_schedule(lc, baseline::giotto_dma_a(lc), opt);
  EXPECT_GE(r.schedule.s0_transfers.size(), groups.size());
}

TEST(LocalSearch, EmptyStartRejected) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  ScheduleResult empty{MemoryLayout(*app), {}, {}};
  EXPECT_THROW(improve_schedule(lc, empty), support::PreconditionError);
}

class LocalSearchRandom : public ::testing::TestWithParam<int> {};

TEST_P(LocalSearchRandom, AlwaysValidAndMonotone) {
  model::GeneratorOptions gopt;
  gopt.seed = static_cast<std::uint64_t>(GetParam()) * 40503u + 5u;
  gopt.num_tasks = 6;
  gopt.num_labels = 5;
  const auto app = generate_application(gopt);
  LetComms lc(*app);
  if (lc.comms_at_s0().empty()) return;
  const ScheduleResult start = GreedyScheduler(lc).build();
  LocalSearchOptions opt;
  opt.max_evaluations = 300;
  const LocalSearchResult r = improve_schedule(lc, start, opt);
  ValidationOptions vopt;
  vopt.check_deadlines = false;
  vopt.check_slot_capacity = false;
  const ValidationReport rep =
      validate_schedule(lc, r.schedule.layout, r.schedule.schedule, vopt);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_LE(r.objective, ratio_of(*app, lc, start) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchRandom, ::testing::Range(0, 10));

}  // namespace
}  // namespace letdma::let
