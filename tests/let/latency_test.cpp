#include "letdma/let/latency.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"
#include "letdma/let/greedy.hpp"

namespace letdma::let {
namespace {

using support::us;

MemoryLayout canonical_layout(const model::Application& app) {
  MemoryLayout layout(app);
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    auto slots = MemoryLayout::required_slots(app, mem);
    if (!slots.empty()) layout.set_order(mem, std::move(slots));
  }
  return layout;
}

TEST(LatencyModel, TransferDurationIsOverheadPlusCopy) {
  const auto app = testing::make_pair_app(support::ms(10), support::ms(10),
                                          /*label_bytes=*/1000);
  LetComms lc(*app);
  const MemoryLayout layout = canonical_layout(*app);
  const DmaTransfer t = make_transfer(layout, {lc.comms_at_s0()[0]});
  const LatencyModel lat(app->platform());
  // Defaults: lambda_O = 13.36us, 1 ns/byte -> 1000 bytes = 1us.
  EXPECT_EQ(lat.transfer_duration(t), us(13.36) + us(1));
}

TEST(LatencyModel, CompletionTimesAccumulate) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const LatencyModel lat(app->platform());
  const auto completions = lat.completion_times(g.s0_transfers);
  ASSERT_EQ(completions.size(), g.s0_transfers.size());
  Time acc = 0;
  for (std::size_t i = 0; i < completions.size(); ++i) {
    acc += lat.transfer_duration(g.s0_transfers[i]);
    EXPECT_EQ(completions[i], acc);
  }
  EXPECT_EQ(lat.total_duration(g.s0_transfers), acc);
}

TEST(LatencyModel, ProposedReadinessBeatsGiotto) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const LatencyModel lat(app->platform());
  const auto& transfers = g.s0_transfers;
  const Time total = lat.total_duration(transfers);
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Time proposed = lat.task_latency(transfers, model::TaskId{i},
                                           ReadinessSemantics::kProposed);
    const Time giotto = lat.task_latency(transfers, model::TaskId{i},
                                         ReadinessSemantics::kGiotto);
    EXPECT_LE(proposed, giotto);
    EXPECT_EQ(giotto, total);
  }
}

TEST(LatencyModel, TaskWithoutCommsHasZeroProposedLatency) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const LatencyModel lat(app->platform());
  // LOCAL communicates only intra-core: no DMA dependency.
  const model::TaskId local = app->find_task("LOCAL");
  EXPECT_EQ(lat.task_latency(g.s0_transfers, local,
                             ReadinessSemantics::kProposed),
            0);
}

TEST(LatencyModel, EmptyInstantIsFree) {
  const auto app = testing::make_pair_app();
  const LatencyModel lat(app->platform());
  EXPECT_EQ(lat.total_duration({}), 0);
  EXPECT_EQ(lat.task_latency({}, model::TaskId{0},
                             ReadinessSemantics::kGiotto),
            0);
}

TEST(LatencyModel, CpuCopyDuration) {
  const auto app = testing::make_pair_app(support::ms(10), support::ms(10),
                                          /*label_bytes=*/1000);
  LetComms lc(*app);
  const LatencyModel lat(app->platform());
  // Defaults: 4 ns/B + 200ns per label: 2 comms x (4000 + 200).
  EXPECT_EQ(lat.cpu_copy_duration(*app, lc.comms_at_s0()),
            2 * (4000 + 200));
}

TEST(WorstCaseLatencies, MaxOverReleases) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const auto wc =
      worst_case_latencies(lc, g.schedule, ReadinessSemantics::kProposed);
  const LatencyModel lat(app->platform());
  // s0 carries every communication, so the worst case equals the s0 value
  // for every task (Theorem 1 for pattern-grouped greedy schedules).
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Time s0 = lat.task_latency(g.schedule.at(0), model::TaskId{i},
                                     ReadinessSemantics::kProposed);
    EXPECT_EQ(wc.at(i), s0) << app->task(model::TaskId{i}).name;
  }
}

TEST(WorstCaseLatencies, GiottoSemantics) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const auto wc =
      worst_case_latencies(lc, g.schedule, ReadinessSemantics::kGiotto);
  const LatencyModel lat(app->platform());
  const Time total_s0 = lat.total_duration(g.schedule.at(0));
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(wc.at(i), total_s0);
  }
}

}  // namespace
}  // namespace letdma::let
