#include "letdma/let/multichannel.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/support/error.hpp"

namespace letdma::let {
namespace {

TEST(MultiChannel, SingleChannelMatchesSequentialModel) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const MultiChannelReport r =
      schedule_on_channels(*app, g.s0_transfers, 1);
  const LatencyModel lat(app->platform());
  const auto completions = lat.completion_times(g.s0_transfers);
  for (std::size_t i = 0; i < g.s0_transfers.size(); ++i) {
    EXPECT_EQ(r.slots[i].finish, completions[i]) << "transfer " << i;
    EXPECT_EQ(r.slots[i].channel, 0);
  }
  ASSERT_EQ(r.readiness.size(), static_cast<std::size_t>(app->num_tasks()));
  for (int i = 0; i < app->num_tasks(); ++i) {
    const Time seq = lat.task_latency(g.s0_transfers, model::TaskId{i},
                                      ReadinessSemantics::kProposed);
    EXPECT_EQ(r.readiness[static_cast<std::size_t>(i)], seq);
  }
}

TEST(MultiChannel, MoreChannelsNeverWorse) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  MultiChannelReport prev = schedule_on_channels(*app, g.s0_transfers, 1);
  for (int channels = 2; channels <= 4; ++channels) {
    const MultiChannelReport cur =
        schedule_on_channels(*app, g.s0_transfers, channels);
    EXPECT_LE(cur.makespan, prev.makespan);
    for (std::size_t task = 0; task < cur.readiness.size(); ++task) {
      EXPECT_LE(cur.readiness[task], prev.readiness.at(task))
          << "task " << task;
    }
    prev = cur;
  }
}

TEST(MultiChannel, DependenciesSerializeAcrossChannels) {
  // A read of a label must start after its write finished, even with
  // unlimited channels.
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  ASSERT_EQ(g.s0_transfers.size(), 2u);  // write then read of one label
  const MultiChannelReport r =
      schedule_on_channels(*app, g.s0_transfers, 8);
  EXPECT_GE(r.slots[1].start, r.slots[0].finish);
}

TEST(MultiChannel, IndependentTransfersOverlap) {
  // Fig1: the write from core 0 and the write from core 1 share nothing;
  // with two channels they must overlap.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  // Find two write transfers from different memories.
  int w0 = -1, w1 = -1;
  for (std::size_t i = 0; i < g.s0_transfers.size(); ++i) {
    if (g.s0_transfers[i].dir != Direction::kWrite) continue;
    if (w0 < 0) {
      w0 = static_cast<int>(i);
    } else if (g.s0_transfers[i].local_mem.value !=
               g.s0_transfers[static_cast<std::size_t>(w0)].local_mem.value) {
      w1 = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(w0, 0);
  ASSERT_GE(w1, 0);
  const MultiChannelReport r =
      schedule_on_channels(*app, g.s0_transfers, 2);
  const ChannelSlot& a = r.slots[static_cast<std::size_t>(w0)];
  const ChannelSlot& b = r.slots[static_cast<std::size_t>(w1)];
  EXPECT_LT(b.start, a.finish);  // overlap
  EXPECT_NE(a.channel, b.channel);
}

TEST(MultiChannel, RejectsZeroChannels) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  EXPECT_THROW(schedule_on_channels(*app, g.s0_transfers, 0),
               support::PreconditionError);
}

TEST(MultiChannel, EmptyScheduleEmptyReport) {
  const auto app = testing::make_pair_app();
  const MultiChannelReport r = schedule_on_channels(*app, {}, 2);
  EXPECT_TRUE(r.slots.empty());
  EXPECT_EQ(r.makespan, 0);
}

}  // namespace
}  // namespace letdma::let
