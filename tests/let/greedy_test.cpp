#include "letdma/let/greedy.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"
#include "letdma/let/validate.hpp"

namespace letdma::let {
namespace {

TEST(GreedyScheduler, PairAppProducesValidSchedule) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  EXPECT_EQ(g.s0_transfers.size(), 2u);  // one write, then one read
  EXPECT_EQ(g.s0_transfers[0].dir, Direction::kWrite);
  EXPECT_EQ(g.s0_transfers[1].dir, Direction::kRead);
  const ValidationReport report = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(GreedyScheduler, Fig1ScheduleValid) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const ValidationReport report = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(GreedyScheduler, MultiReaderScheduleValid) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const ValidationReport report = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(GreedyScheduler, UrgentConsumerIsServedEarly) {
  // tau2 has the smallest period, so its read (and the write feeding it)
  // must appear in the earliest transfers.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  const model::TaskId t2 = app->find_task("tau2");
  int t2_last = -1;
  for (std::size_t gi = 0; gi < g.s0_transfers.size(); ++gi) {
    for (const Communication& c : g.s0_transfers[gi].comms) {
      if (c.task == t2 && c.dir == Direction::kRead) {
        t2_last = static_cast<int>(gi);
      }
    }
  }
  ASSERT_GE(t2_last, 0);
  // tau2's read needs tau1's write (other memory) and, by Property 1,
  // tau2's own write (yet another memory): index 2 is the minimum.
  EXPECT_LE(t2_last, 2);
}

TEST(GreedyScheduler, RespectsPropertyOneAndTwoByConstruction) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  // Validator covers this; re-check directly at s0 for clarity.
  std::map<int, int> write_max, read_min, label_write;
  for (std::size_t gi = 0; gi < g.s0_transfers.size(); ++gi) {
    for (const Communication& c : g.s0_transfers[gi].comms) {
      if (c.dir == Direction::kWrite) {
        write_max[c.task.value] =
            std::max(write_max.count(c.task.value)
                         ? write_max[c.task.value]
                         : -1,
                     static_cast<int>(gi));
        label_write[c.label.value] = static_cast<int>(gi);
      } else {
        if (!read_min.count(c.task.value)) {
          read_min[c.task.value] = static_cast<int>(gi);
        }
        EXPECT_LT(label_write.at(c.label.value), static_cast<int>(gi));
      }
    }
  }
  for (const auto& [task, wmax] : write_max) {
    if (read_min.count(task)) {
      EXPECT_LT(wmax, read_min[task]);
    }
  }
}

TEST(GreedyScheduler, DeadlineAwareOrdering) {
  // Give tau6 the tightest acquisition deadline; its data must be scheduled
  // before tau2's despite the period order.
  const auto app = testing::make_fig1_app();
  app->set_acquisition_deadline(app->find_task("tau6"), support::us(50));
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  int t6_read = -1, t2_read = -1;
  for (std::size_t gi = 0; gi < g.s0_transfers.size(); ++gi) {
    for (const Communication& c : g.s0_transfers[gi].comms) {
      if (c.dir != Direction::kRead) continue;
      if (c.task == app->find_task("tau6")) t6_read = static_cast<int>(gi);
      if (c.task == app->find_task("tau2")) t2_read = static_cast<int>(gi);
    }
  }
  ASSERT_GE(t6_read, 0);
  ASSERT_GE(t2_read, 0);
  EXPECT_LT(t6_read, t2_read);
}

class GreedyStrategies : public ::testing::TestWithParam<GreedyStrategy> {};

TEST_P(GreedyStrategies, AllStrategiesProduceValidSchedules) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc, {GetParam()}).build();
  const ValidationReport r = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(r.ok()) << r.summary();
}

TEST_P(GreedyStrategies, MultiReaderValidUnderEveryStrategy) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc, {GetParam()}).build();
  const ValidationReport r = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(r.ok()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(Sweep, GreedyStrategies,
                         ::testing::Values(GreedyStrategy::kUrgencyFirst,
                                           GreedyStrategy::kWriteBatched,
                                           GreedyStrategy::kReadBatched));

TEST(GreedyScheduler, BestTransferCountNotWorseThanAnyStrategy) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult best = GreedyScheduler::best_transfer_count(lc);
  for (const GreedyStrategy s :
       {GreedyStrategy::kUrgencyFirst, GreedyStrategy::kWriteBatched,
        GreedyStrategy::kReadBatched}) {
    const ScheduleResult r = GreedyScheduler(lc, {s}).build();
    EXPECT_LE(best.s0_transfers.size(), r.s0_transfers.size());
  }
  const ValidationReport rep =
      validate_schedule(lc, best.layout, best.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(GreedyScheduler, BestLatencyRatioValid) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult best = GreedyScheduler::best_latency_ratio(lc);
  const ValidationReport rep =
      validate_schedule(lc, best.layout, best.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(GreedyScheduler, WriteBatchedMergesWritesPerCore) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g =
      GreedyScheduler(lc, {GreedyStrategy::kWriteBatched}).build();
  // Fig1: three writes per core, equal patterns per pair only at matching
  // periods; still, the write transfers must all precede the reads.
  bool seen_read = false;
  for (const DmaTransfer& t : g.s0_transfers) {
    if (t.dir == Direction::kRead) seen_read = true;
    if (seen_read) {
      EXPECT_EQ(t.dir, Direction::kRead);
    }
  }
}

TEST(BuildFromGroups, SingletonGroupsActLikeGiottoA) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  std::vector<std::vector<Communication>> groups;
  // Writes first, then reads, one communication per group.
  for (const Direction dir : {Direction::kWrite, Direction::kRead}) {
    for (const Communication& c : lc.comms_at_s0()) {
      if (c.dir == dir) groups.push_back({c});
    }
  }
  const ScheduleResult r = build_from_groups(lc, groups);
  EXPECT_EQ(r.s0_transfers.size(), lc.comms_at_s0().size());
  const ValidationReport rep = validate_schedule(lc, r.layout, r.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(BuildFromGroups, LayoutFollowsGroupOrder) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  // Put tau5's write (label lC) first: its global slot must get address 0.
  const Communication w5{Direction::kWrite, app->find_task("tau5"),
                         model::LabelId{2}};
  std::vector<std::vector<Communication>> groups{{w5}};
  for (const Direction dir : {Direction::kWrite, Direction::kRead}) {
    for (const Communication& c : lc.comms_at_s0()) {
      if (c.dir == dir && !(c == w5)) groups.push_back({c});
    }
  }
  const ScheduleResult r = build_from_groups(lc, groups);
  EXPECT_EQ(r.layout.address(app->platform().global_memory(),
                             global_slot_of(w5)),
            0);
}

TEST(BuildFromGroups, IncompatibleGroupIsSplit) {
  // A group mixing non-adjacent labels still produces a valid (split)
  // schedule rather than failing.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  std::vector<Communication> all_writes, all_reads;
  for (const Communication& c : lc.comms_at_s0()) {
    (c.dir == Direction::kWrite ? all_writes : all_reads).push_back(c);
  }
  // One mega write group per core plus singleton reads.
  std::map<int, std::vector<Communication>> by_mem;
  for (const Communication& c : all_writes) {
    by_mem[local_memory_of(*app, c).value].push_back(c);
  }
  std::vector<std::vector<Communication>> groups;
  for (auto& [mem, cs] : by_mem) groups.push_back(std::move(cs));
  for (const Communication& c : all_reads) groups.push_back({c});
  const ScheduleResult r = build_from_groups(lc, groups);
  const ValidationReport rep = validate_schedule(lc, r.layout, r.schedule);
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(GreedyScheduler, DerivedInstantsNeverSplitTransfers) {
  // Pattern-grouped transfers restrict to all-or-nothing at any instant, so
  // the per-instant transfer count never exceeds the s0 count.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult g = GreedyScheduler(lc).build();
  for (const Time t : lc.required_instants()) {
    EXPECT_LE(g.schedule.at(t).size(), g.s0_transfers.size()) << "t=" << t;
  }
}

}  // namespace
}  // namespace letdma::let
