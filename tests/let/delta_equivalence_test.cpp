// Equivalence of the compiled delta evaluator against the seed
// rebuild-per-candidate path.
//
// Three layers of evidence:
//   1. improve_schedule(kCompiled) and improve_schedule(kReference) walk
//      the same accepted-move sequence on WATERS and on randomized
//      instances — identical evaluation/improvement counts, identical
//      objective bits, identical final layouts and transfer lists;
//   2. DeltaEvaluator::evaluate agrees move-by-move with an independent
//      in-test reimplementation of the seed evaluation (order_feasible +
//      build_from_groups + worst_case_latencies + deadline check) over the
//      full first neighbourhood;
//   3. the deduplicating worst_case_latencies agrees with the seed's
//      per-(slot, task) map-based loop, re-implemented here.
#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/compiled.hpp"
#include "letdma/let/delta.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/latency.hpp"
#include "letdma/let/local_search.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma::let {
namespace {

bool same_comm(const Communication& a, const Communication& b) {
  return a.dir == b.dir && a.task == b.task && a.label == b.label;
}

void expect_same_transfers(const std::vector<DmaTransfer>& a,
                           const std::vector<DmaTransfer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dir, b[i].dir) << "transfer " << i;
    EXPECT_EQ(a[i].local_mem.value, b[i].local_mem.value) << "transfer " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "transfer " << i;
    EXPECT_EQ(a[i].local_addr, b[i].local_addr) << "transfer " << i;
    EXPECT_EQ(a[i].global_addr, b[i].global_addr) << "transfer " << i;
    ASSERT_EQ(a[i].comms.size(), b[i].comms.size()) << "transfer " << i;
    for (std::size_t c = 0; c < a[i].comms.size(); ++c) {
      EXPECT_TRUE(same_comm(a[i].comms[c], b[i].comms[c]))
          << "transfer " << i << " comm " << c;
    }
  }
}

void expect_same_result(const ScheduleResult& a, const ScheduleResult& b,
                        const model::Application& app) {
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    ASSERT_EQ(a.layout.has_order(mem), b.layout.has_order(mem));
    if (a.layout.has_order(mem)) {
      EXPECT_EQ(a.layout.order(mem), b.layout.order(mem)) << "memory " << m;
    }
  }
  expect_same_transfers(a.s0_transfers, b.s0_transfers);
  ASSERT_EQ(a.schedule.all().size(), b.schedule.all().size());
  auto ita = a.schedule.all().begin();
  auto itb = b.schedule.all().begin();
  for (; ita != a.schedule.all().end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    expect_same_transfers(ita->second, itb->second);
  }
}

/// Both engines on one start, full-run comparison.
void expect_engines_agree(const LetComms& comms, const ScheduleResult& start,
                          LocalSearchGoal goal, int max_evaluations = 4000) {
  LocalSearchOptions ref;
  ref.engine = LocalSearchEngine::kReference;
  ref.goal = goal;
  ref.max_evaluations = max_evaluations;
  LocalSearchOptions fast = ref;
  fast.engine = LocalSearchEngine::kCompiled;

  const LocalSearchResult a = improve_schedule(comms, start, ref);
  const LocalSearchResult b = improve_schedule(comms, start, fast);

  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.improvements, b.improvements);
  EXPECT_EQ(a.objective, b.objective);  // exact: same arithmetic, same order
  expect_same_result(a.schedule, b.schedule, comms.app());
}

TEST(DeltaEquivalence, WatersLatencyGoal) {
  const auto app = waters::make_waters_app();
  LetComms lc(*app);
  const ScheduleResult start = GreedyScheduler::best_latency_ratio(lc);
  expect_engines_agree(lc, start, LocalSearchGoal::kMinMaxLatencyRatio);
}

TEST(DeltaEquivalence, WatersTransferGoal) {
  const auto app = waters::make_waters_app();
  LetComms lc(*app);
  const ScheduleResult start = GreedyScheduler::best_transfer_count(lc);
  expect_engines_agree(lc, start, LocalSearchGoal::kMinTransfers);
}

TEST(DeltaEquivalence, WatersWithAcquisitionDeadlines) {
  // Deadlines activate the per-class deadline rejection inside the sweep;
  // set them from the greedy latencies with headroom so the search stays
  // feasible yet the check is exercised on every candidate.
  const auto app = waters::make_waters_app();
  {
    LetComms probe(*app);
    const ScheduleResult g = GreedyScheduler(probe).build();
    const std::vector<Time> wc = worst_case_latencies(
        probe, g.schedule, ReadinessSemantics::kProposed);
    for (int i = 0; i < app->num_tasks(); ++i) {
      const Time lam = wc[static_cast<std::size_t>(i)];
      if (lam > 0) {
        app->set_acquisition_deadline(model::TaskId{i}, 2 * lam);
      }
    }
  }
  LetComms lc(*app);
  const ScheduleResult start = GreedyScheduler(lc).build();
  expect_engines_agree(lc, start, LocalSearchGoal::kMinMaxLatencyRatio);
}

TEST(DeltaEquivalence, HundredGeneratedInstances) {
  int exercised = 0;
  for (int seed = 0; seed < 110; ++seed) {
    model::GeneratorOptions opt;
    opt.seed = static_cast<std::uint64_t>(seed) + 1;
    opt.num_cores = 2 + seed % 3;
    opt.num_tasks = 6 + seed % 5;
    opt.num_labels = 8 + seed % 7;
    const auto app = model::generate_application(opt);
    LetComms lc(*app);
    if (lc.comms_at_s0().empty()) continue;
    const ScheduleResult start = GreedyScheduler(lc).build();
    if (start.s0_transfers.empty()) continue;
    SCOPED_TRACE("seed " + std::to_string(seed));
    // Cap the walk so the reference rebuild path stays cheap under ASan;
    // both engines see the identical budget.
    expect_engines_agree(lc, start,
                         seed % 2 == 0 ? LocalSearchGoal::kMinMaxLatencyRatio
                                       : LocalSearchGoal::kMinTransfers,
                         /*max_evaluations=*/300);
    ++exercised;
  }
  EXPECT_GE(exercised, 100);
}

// ---------------------------------------------------------------------------
// Layer 2: move-by-move agreement with an independent seed re-implementation.
// ---------------------------------------------------------------------------

using Groups = std::vector<std::vector<Communication>>;

bool ref_order_feasible(const Groups& groups) {
  std::map<int, int> task_write_max, task_read_min;
  std::map<int, int> label_write, label_read_min;
  for (int gi = 0; gi < static_cast<int>(groups.size()); ++gi) {
    for (const Communication& c : groups[static_cast<std::size_t>(gi)]) {
      if (c.dir == Direction::kWrite) {
        auto [it, fresh] = task_write_max.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::max(it->second, gi);
        label_write[c.label.value] = gi;
      } else {
        auto [it, fresh] = task_read_min.try_emplace(c.task.value, gi);
        if (!fresh) it->second = std::min(it->second, gi);
        auto [lt, lfresh] = label_read_min.try_emplace(c.label.value, gi);
        if (!lfresh) lt->second = std::min(lt->second, gi);
      }
    }
  }
  for (const auto& [task, wmax] : task_write_max) {
    const auto it = task_read_min.find(task);
    if (it != task_read_min.end() && wmax >= it->second) return false;
  }
  for (const auto& [label, wg] : label_write) {
    const auto it = label_read_min.find(label);
    if (it != label_read_min.end() && wg >= it->second) return false;
  }
  return true;
}

struct RefEval {
  bool feasible = false;
  double objective = 0.0;
};

RefEval ref_evaluate(const LetComms& comms, const Groups& groups,
                     LocalSearchGoal goal) {
  RefEval ev;
  if (!ref_order_feasible(groups)) return ev;
  const model::Application& app = comms.app();
  const ScheduleResult built = build_from_groups(comms, groups);
  const std::vector<Time> wc = worst_case_latencies(
      comms, built.schedule, ReadinessSemantics::kProposed);
  double worst_ratio = 0.0;
  for (int task = 0; task < static_cast<int>(wc.size()); ++task) {
    const model::Task& t = app.task(model::TaskId{task});
    const Time lam = wc[static_cast<std::size_t>(task)];
    if (t.acquisition_deadline && lam > *t.acquisition_deadline) return ev;
    worst_ratio = std::max(worst_ratio, static_cast<double>(lam) /
                                            static_cast<double>(t.period));
  }
  ev.feasible = true;
  ev.objective = goal == LocalSearchGoal::kMinTransfers
                     ? static_cast<double>(built.s0_transfers.size())
                     : worst_ratio;
  return ev;
}

/// Applies a ScheduleDelta to comm groups with the seed's move semantics.
Groups apply_move(const Groups& g, const ScheduleDelta& move) {
  Groups cand = g;
  switch (move.kind) {
    case ScheduleDelta::Kind::kRelocate: {
      std::vector<Communication> moved =
          std::move(cand[static_cast<std::size_t>(move.from)]);
      cand.erase(cand.begin() + move.from);
      cand.insert(cand.begin() + move.to, std::move(moved));
      break;
    }
    case ScheduleDelta::Kind::kMerge: {
      auto& dst = cand[static_cast<std::size_t>(move.from)];
      const auto& src = cand[static_cast<std::size_t>(move.to)];
      dst.insert(dst.end(), src.begin(), src.end());
      cand.erase(cand.begin() + move.to);
      break;
    }
    case ScheduleDelta::Kind::kSplit: {
      auto& grp = cand[static_cast<std::size_t>(move.from)];
      const std::size_t half = grp.size() / 2;
      std::vector<Communication> tail(
          grp.begin() + static_cast<std::ptrdiff_t>(half), grp.end());
      grp.resize(half);
      cand.insert(cand.begin() + move.from + 1, std::move(tail));
      break;
    }
  }
  return cand;
}

void expect_moves_agree(const LetComms& comms, LocalSearchGoal goal) {
  const CompiledComms compiled(comms);
  const ScheduleResult start = GreedyScheduler(compiled).build();
  ASSERT_FALSE(start.s0_transfers.empty());

  Groups groups;
  std::vector<std::vector<int>> id_groups;
  for (const DmaTransfer& t : start.s0_transfers) {
    groups.push_back(t.comms);
    std::vector<int> ids;
    for (const Communication& c : t.comms) ids.push_back(compiled.index_of(c));
    id_groups.push_back(std::move(ids));
  }
  DeltaEvaluator ev(compiled, id_groups, goal);

  // The full first neighbourhood: relocations, merges, splits in the
  // search's enumeration order.
  std::vector<ScheduleDelta> moves;
  const int n = static_cast<int>(groups.size());
  for (int i = 0; i < n; ++i) {
    for (int j = std::max(0, i - 4); j <= std::min(n - 1, i + 4); ++j) {
      if (j != i) {
        moves.push_back({ScheduleDelta::Kind::kRelocate, i, j});
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (ev.group_mem(i) == ev.group_mem(j) &&
          ev.group_is_write(i) == ev.group_is_write(j)) {
        moves.push_back({ScheduleDelta::Kind::kMerge, i, j});
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (groups[static_cast<std::size_t>(i)].size() >= 2) {
      moves.push_back({ScheduleDelta::Kind::kSplit, i, -1});
    }
  }

  int checked = 0;
  for (const ScheduleDelta& move : moves) {
    const DeltaEval fast = ev.evaluate(move);
    const RefEval ref = ref_evaluate(comms, apply_move(groups, move), goal);
    EXPECT_EQ(fast.feasible, ref.feasible) << "move " << checked;
    if (fast.feasible) {
      EXPECT_EQ(fast.objective, ref.objective) << "move " << checked;
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(DeltaEquivalence, MoveByMoveOnWaters) {
  const auto app = waters::make_waters_app();
  LetComms lc(*app);
  expect_moves_agree(lc, LocalSearchGoal::kMinMaxLatencyRatio);
  expect_moves_agree(lc, LocalSearchGoal::kMinTransfers);
}

TEST(DeltaEquivalence, MoveByMoveOnFig1) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  expect_moves_agree(lc, LocalSearchGoal::kMinMaxLatencyRatio);
}

// ---------------------------------------------------------------------------
// Layer 3: the deduplicating worst_case_latencies equals the seed loop.
// ---------------------------------------------------------------------------

std::map<int, Time> seed_worst_case(const LetComms& comms,
                                    const TransferSchedule& schedule,
                                    ReadinessSemantics sem) {
  const model::Application& app = comms.app();
  const LatencyModel lat(app.platform());
  std::map<int, Time> out;
  for (int i = 0; i < app.num_tasks(); ++i) out[i] = 0;
  for (const auto& [t, transfers] : schedule.all()) {
    for (int i = 0; i < app.num_tasks(); ++i) {
      if (t % app.task(model::TaskId{i}).period != 0) continue;
      const Time l = lat.task_latency(transfers, model::TaskId{i}, sem);
      out[i] = std::max(out[i], l);
    }
  }
  return out;
}

TEST(DeltaEquivalence, DedupedLatenciesMatchSeedLoop) {
  for (const auto sem :
       {ReadinessSemantics::kProposed, ReadinessSemantics::kGiotto}) {
    const auto app = waters::make_waters_app();
    LetComms lc(*app);
    const ScheduleResult g = GreedyScheduler::best_latency_ratio(lc);
    const std::vector<Time> fast = worst_case_latencies(lc, g.schedule, sem);
    const std::map<int, Time> slow = seed_worst_case(lc, g.schedule, sem);
    ASSERT_EQ(fast.size(), slow.size());
    for (const auto& [task, lam] : slow) {
      EXPECT_EQ(fast[static_cast<std::size_t>(task)], lam) << "task " << task;
    }
  }
}

TEST(DeltaEquivalence, CompiledSweepMatchesDerivedSchedule) {
  const auto app = waters::make_waters_app();
  LetComms lc(*app);
  const CompiledComms compiled(lc);
  const ScheduleResult g = GreedyScheduler(compiled).build();
  const std::vector<Time> swept = compiled.sweep_worst_case(g.s0_transfers);
  const std::vector<Time> scratch = worst_case_latencies(
      lc, g.schedule, ReadinessSemantics::kProposed);
  EXPECT_EQ(swept, scratch);
}

}  // namespace
}  // namespace letdma::let
