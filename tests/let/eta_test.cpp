#include "letdma/let/eta.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::let {
namespace {

using support::ms;

TEST(EtaWrite, OversampledProducerSkips) {
  // T_p = 5, T_c = 15: only every third producer job writes.
  EXPECT_EQ(eta_write(0, ms(5), ms(15)), 0);
  EXPECT_EQ(eta_write(1, ms(5), ms(15)), 3);
  EXPECT_EQ(eta_write(2, ms(5), ms(15)), 6);
}

TEST(EtaWrite, SlowProducerWritesEveryJob) {
  EXPECT_EQ(eta_write(0, ms(15), ms(5)), 0);
  EXPECT_EQ(eta_write(4, ms(15), ms(5)), 4);
}

TEST(EtaWrite, NonHarmonicPeriods) {
  // T_p = 10, T_c = 15: consumer jobs at 0, 15, 30 -> writer jobs 0, 1, 3.
  EXPECT_EQ(eta_write(0, ms(10), ms(15)), 0);
  EXPECT_EQ(eta_write(1, ms(10), ms(15)), 1);
  EXPECT_EQ(eta_write(2, ms(10), ms(15)), 3);
}

TEST(EtaRead, OversampledConsumerSkips) {
  // T_p = 15, T_c = 5: reads only when new data arrives.
  EXPECT_EQ(eta_read(0, ms(15), ms(5)), 0);
  EXPECT_EQ(eta_read(1, ms(15), ms(5)), 3);
  EXPECT_EQ(eta_read(2, ms(15), ms(5)), 6);
}

TEST(EtaRead, SlowConsumerReadsEveryJob) {
  EXPECT_EQ(eta_read(0, ms(5), ms(15)), 0);
  EXPECT_EQ(eta_read(2, ms(5), ms(15)), 2);
}

TEST(Eta, RejectsBadArguments) {
  EXPECT_THROW(eta_write(-1, ms(5), ms(5)), support::PreconditionError);
  EXPECT_THROW(eta_write(0, 0, ms(5)), support::PreconditionError);
  EXPECT_THROW(eta_read(0, ms(5), -1), support::PreconditionError);
}

TEST(WriteInstants, EqualPeriodsEveryRelease) {
  const auto w = write_instants(ms(10), ms(10), ms(40));
  EXPECT_EQ(w, (std::vector<support::Time>{0, ms(10), ms(20), ms(30)}));
}

TEST(WriteInstants, OversampledProducer) {
  // T_p = 5, T_c = 15, H = 30: writes at 0 and 15 only.
  const auto w = write_instants(ms(5), ms(15), ms(30));
  EXPECT_EQ(w, (std::vector<support::Time>{0, ms(15)}));
}

TEST(WriteInstants, SlowProducerAllJobs) {
  const auto w = write_instants(ms(15), ms(5), ms(30));
  EXPECT_EQ(w, (std::vector<support::Time>{0, ms(15)}));
}

TEST(ReadInstants, OversampledConsumer) {
  // T_p = 15, T_c = 5, H = 30: reads at 0 and 15 only (fresh data).
  const auto r = read_instants(ms(15), ms(5), ms(30));
  EXPECT_EQ(r, (std::vector<support::Time>{0, ms(15)}));
}

TEST(ReadInstants, SlowConsumerEveryRelease) {
  const auto r = read_instants(ms(5), ms(15), ms(30));
  EXPECT_EQ(r, (std::vector<support::Time>{0, ms(15)}));
}

TEST(ReadInstants, NonHarmonicPair) {
  // T_p = 10, T_c = 15, H = 30: producer jobs 0,1,2 -> reads at
  // ceil(0)=0, ceil(10/15)=1 -> 15, ceil(20/15)=2 -> 30 % 30 = 0.
  const auto r = read_instants(ms(10), ms(15), ms(30));
  EXPECT_EQ(r, (std::vector<support::Time>{0, ms(15)}));
}

TEST(Instants, AlwaysContainZero) {
  for (const auto& [tp, tc] : std::vector<std::pair<int, int>>{
           {5, 15}, {15, 5}, {10, 15}, {33, 66}, {7, 13}}) {
    const support::Time h = support::lcm64(ms(tp), ms(tc));
    EXPECT_EQ(write_instants(ms(tp), ms(tc), h).front(), 0);
    EXPECT_EQ(read_instants(ms(tp), ms(tc), h).front(), 0);
  }
}

TEST(Instants, HorizonMustBeCommonMultiple) {
  EXPECT_THROW(write_instants(ms(5), ms(15), ms(20)),
               support::PreconditionError);
  EXPECT_THROW(read_instants(ms(5), ms(15), ms(25)),
               support::PreconditionError);
}

class InstantCounts : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(InstantCounts, MatchesSkipTheory) {
  // Number of required writes over one LCM equals the number of consumer
  // jobs when the producer is faster, else the number of producer jobs.
  // Reads are symmetric.
  const auto [tp_ms, tc_ms] = GetParam();
  const support::Time tp = ms(tp_ms), tc = ms(tc_ms);
  const support::Time h = support::lcm64(tp, tc);
  const auto w = write_instants(tp, tc, h);
  const auto r = read_instants(tp, tc, h);
  EXPECT_EQ(static_cast<support::Time>(w.size()),
            h / std::max(tp, tc));
  EXPECT_EQ(static_cast<support::Time>(r.size()),
            h / std::max(tp, tc));
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, InstantCounts,
    ::testing::Values(std::pair{5, 15}, std::pair{15, 5}, std::pair{10, 10},
                      std::pair{10, 15}, std::pair{33, 66}, std::pair{7, 13},
                      std::pair{400, 5}));

}  // namespace
}  // namespace letdma::let
