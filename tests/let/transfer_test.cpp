#include "letdma/let/transfer.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"
#include "letdma/let/greedy.hpp"

namespace letdma::let {
namespace {

/// Layout helper: order every memory by its canonical required_slots order.
MemoryLayout canonical_layout(const model::Application& app) {
  MemoryLayout layout(app);
  for (int m = 0; m < app.platform().num_memories(); ++m) {
    const model::MemoryId mem{m};
    auto slots = MemoryLayout::required_slots(app, mem);
    if (!slots.empty()) layout.set_order(mem, std::move(slots));
  }
  return layout;
}

TEST(MakeTransfer, SingleCommunication) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const MemoryLayout layout = canonical_layout(*app);
  const auto s0 = lc.comms_at_s0();
  const DmaTransfer w = make_transfer(layout, {s0[0]});
  EXPECT_EQ(w.dir, Direction::kWrite);
  EXPECT_EQ(w.bytes, 1000);
  EXPECT_EQ(w.comms.size(), 1u);
  EXPECT_EQ(w.local_mem.value, 0);  // producer core 0
}

TEST(MakeTransfer, MergesContiguousRun) {
  const auto app = testing::make_fig1_app();
  const MemoryLayout layout = canonical_layout(*app);
  // tau1 writes lA (label 0), tau3 writes lB (label 1): in the canonical
  // order their global slots are adjacent AND their local slots in M_1 are
  // adjacent (writer copies sort by (label, owner)).
  const Communication w1{Direction::kWrite, app->find_task("tau1"),
                         model::LabelId{0}};
  const Communication w3{Direction::kWrite, app->find_task("tau3"),
                         model::LabelId{1}};
  const DmaTransfer t = make_transfer(layout, {w3, w1});  // any input order
  EXPECT_EQ(t.bytes, 2000 + 4000);
  ASSERT_EQ(t.comms.size(), 2u);
  EXPECT_EQ(t.comms[0].label.value, 0);  // sorted by address
  EXPECT_EQ(t.comms[1].label.value, 1);
}

TEST(MakeTransfer, RejectsMixedDirections) {
  const auto app = testing::make_pair_app();
  LetComms lc(*app);
  const MemoryLayout layout = canonical_layout(*app);
  const auto s0 = lc.comms_at_s0();  // one write, one read
  EXPECT_THROW(make_transfer(layout, {s0[0], s0[1]}),
               support::PreconditionError);
}

TEST(MakeTransfer, RejectsNonContiguousLabels) {
  const auto app = testing::make_fig1_app();
  const MemoryLayout layout = canonical_layout(*app);
  // lA (label 0) and lC (label 2) are separated by lB in global memory.
  const Communication w1{Direction::kWrite, app->find_task("tau1"),
                         model::LabelId{0}};
  const Communication w5{Direction::kWrite, app->find_task("tau5"),
                         model::LabelId{2}};
  EXPECT_THROW(make_transfer(layout, {w1, w5}), support::PreconditionError);
}

TEST(MakeTransfer, RejectsMixedLocalMemories) {
  const auto app = testing::make_multireader_app();
  LetComms lc(*app);
  const MemoryLayout layout = canonical_layout(*app);
  std::vector<Communication> reads;
  for (const Communication& c : lc.comms_at_s0()) {
    if (c.dir == Direction::kRead) reads.push_back(c);
  }
  ASSERT_EQ(reads.size(), 2u);  // two consumers on different cores
  EXPECT_THROW(make_transfer(layout, reads), support::PreconditionError);
}

TEST(MakeTransfer, EmptyThrows) {
  const auto app = testing::make_pair_app();
  const MemoryLayout layout = canonical_layout(*app);
  EXPECT_THROW(make_transfer(layout, {}), support::PreconditionError);
}

TEST(SplitIntoTransfers, SplitsAtGaps) {
  const auto app = testing::make_fig1_app();
  const MemoryLayout layout = canonical_layout(*app);
  const Communication w1{Direction::kWrite, app->find_task("tau1"),
                         model::LabelId{0}};
  const Communication w5{Direction::kWrite, app->find_task("tau5"),
                         model::LabelId{2}};
  const auto pieces = split_into_transfers(layout, {w1, w5});
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0].bytes, 2000);
  EXPECT_EQ(pieces[1].bytes, 8000);
}

TEST(SplitIntoTransfers, KeepsContiguousTogether) {
  const auto app = testing::make_fig1_app();
  const MemoryLayout layout = canonical_layout(*app);
  const Communication w1{Direction::kWrite, app->find_task("tau1"),
                         model::LabelId{0}};
  const Communication w3{Direction::kWrite, app->find_task("tau3"),
                         model::LabelId{1}};
  const auto pieces = split_into_transfers(layout, {w1, w3});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].bytes, 6000);
}

TEST(SplitIntoTransfers, EmptyInputEmptyOutput) {
  const auto app = testing::make_pair_app();
  const MemoryLayout layout = canonical_layout(*app);
  EXPECT_TRUE(split_into_transfers(layout, {}).empty());
}

TEST(TransferSchedule, SetAndQueryInstants) {
  TransferSchedule s;
  EXPECT_FALSE(s.has_instant(0));
  EXPECT_THROW(s.at(0), support::PreconditionError);
  s.set_instant(0, {});
  EXPECT_TRUE(s.has_instant(0));
  EXPECT_TRUE(s.at(0).empty());
}

TEST(DeriveSchedule, CoversEveryInstantExactly) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const ScheduleResult greedy = GreedyScheduler(lc).build();
  for (const Time t : lc.required_instants()) {
    ASSERT_TRUE(greedy.schedule.has_instant(t));
    std::vector<Communication> carried;
    for (const DmaTransfer& d : greedy.schedule.at(t)) {
      carried.insert(carried.end(), d.comms.begin(), d.comms.end());
    }
    canonicalize(carried);
    EXPECT_EQ(carried, lc.comms_at(t)) << "t=" << t;
  }
}

}  // namespace
}  // namespace letdma::let
