#include "letdma/let/comm.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"

namespace letdma::let {
namespace {

TEST(Communication, CanonicalOrdering) {
  const Communication w1{Direction::kWrite, model::TaskId{0},
                         model::LabelId{1}};
  const Communication w2{Direction::kWrite, model::TaskId{0},
                         model::LabelId{2}};
  const Communication r1{Direction::kRead, model::TaskId{0},
                         model::LabelId{0}};
  EXPECT_LT(w1, w2);  // same dir/task: by label
  EXPECT_LT(w1, r1);  // writes sort before reads
  EXPECT_EQ(w1, w1);
}

TEST(Communication, CanonicalizeSortsAndDeduplicates) {
  const Communication a{Direction::kWrite, model::TaskId{1},
                        model::LabelId{0}};
  const Communication b{Direction::kRead, model::TaskId{2},
                        model::LabelId{0}};
  std::vector<Communication> comms{b, a, b, a, a};
  canonicalize(comms);
  ASSERT_EQ(comms.size(), 2u);
  EXPECT_EQ(comms[0], a);
  EXPECT_EQ(comms[1], b);
}

TEST(Communication, ToStringRendering) {
  const auto app = testing::make_pair_app();
  const Communication w{Direction::kWrite, app->find_task("PROD"),
                        model::LabelId{0}};
  const Communication r{Direction::kRead, app->find_task("CONS"),
                        model::LabelId{0}};
  EXPECT_EQ(to_string(*app, w), "W(PROD, x)");
  EXPECT_EQ(to_string(*app, r), "R(x, CONS)");
}

TEST(Communication, LocalMemoryFollowsTaskCore) {
  const auto app = testing::make_pair_app();
  const Communication w{Direction::kWrite, app->find_task("PROD"),
                        model::LabelId{0}};
  const Communication r{Direction::kRead, app->find_task("CONS"),
                        model::LabelId{0}};
  EXPECT_EQ(local_memory_of(*app, w).value, 0);
  EXPECT_EQ(local_memory_of(*app, r).value, 1);
}

}  // namespace
}  // namespace letdma::let
