#include "letdma/baseline/giotto.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/support/error.hpp"

namespace letdma::baseline {
namespace {

using let::Direction;
using let::LetComms;

TEST(GiottoDmaA, OneTransferPerCommunication) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const let::ScheduleResult g = giotto_dma_a(lc);
  EXPECT_EQ(g.s0_transfers.size(), lc.comms_at_s0().size());
  for (const let::DmaTransfer& t : g.s0_transfers) {
    EXPECT_EQ(t.comms.size(), 1u);
  }
}

TEST(GiottoDmaA, WritesBeforeReads) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const let::ScheduleResult g = giotto_dma_a(lc);
  bool seen_read = false;
  for (const let::DmaTransfer& t : g.s0_transfers) {
    if (t.dir == Direction::kRead) seen_read = true;
    if (seen_read) {
      EXPECT_EQ(t.dir, Direction::kRead);
    }
  }
}

TEST(GiottoDmaA, SatisfiesLetProperties) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const let::ScheduleResult g = giotto_dma_a(lc);
  let::ValidationOptions opt;
  opt.semantics = let::ReadinessSemantics::kGiotto;
  opt.check_deadlines = false;  // baseline has no tuned deadlines
  const auto report = validate_schedule(lc, g.layout, g.schedule, opt);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(GiottoDmaB, MergesWithOptimizedLayout) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  // Use the greedy layout as the "optimized" one.
  const let::ScheduleResult greedy = let::GreedyScheduler(lc).build();
  const let::ScheduleResult b = giotto_dma_b(lc, greedy.layout);
  const let::ScheduleResult a = giotto_dma_a(lc);
  EXPECT_LE(b.s0_transfers.size(), a.s0_transfers.size());
  let::ValidationOptions opt;
  opt.semantics = let::ReadinessSemantics::kGiotto;
  opt.check_deadlines = false;
  opt.check_theorem1 = false;  // Giotto-B derivation may split transfers
  const auto report = validate_schedule(lc, b.layout, b.schedule, opt);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(GiottoCpu, EveryTaskWaitsForTheWholeEpoch) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const auto lats = giotto_cpu_latencies(lc);
  const let::LatencyModel lat(app->platform());
  const support::Time total = lat.cpu_copy_duration(*app, lc.comms_at_s0());
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(lats.at(i), total);
  }
}

TEST(GiottoDmaLatencies, EqualForAllTasksAtS0) {
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const let::ScheduleResult a = giotto_dma_a(lc);
  const auto lats = giotto_dma_latencies(lc, a);
  const let::LatencyModel lat(app->platform());
  const support::Time total = lat.total_duration(a.schedule.at(0));
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(lats.at(i), total);
  }
}

TEST(GiottoDmaA, OverheadDominatedBySeparateTransfers) {
  // A's per-comm transfers pay |C| overheads; B with a merged layout pays
  // fewer. Compare total duration at s0.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const let::ScheduleResult a = giotto_dma_a(lc);
  const let::ScheduleResult greedy = let::GreedyScheduler(lc).build();
  const let::ScheduleResult b = giotto_dma_b(lc, greedy.layout);
  const let::LatencyModel lat(app->platform());
  EXPECT_LE(lat.total_duration(b.schedule.at(0)),
            lat.total_duration(a.schedule.at(0)));
}

TEST(GiottoCpu, SlowerThanProposedDma) {
  // The headline claim: CPU-driven Giotto epochs are far slower than the
  // proposed per-task readiness, especially for the urgent task.
  const auto app = testing::make_fig1_app();
  LetComms lc(*app);
  const auto cpu = giotto_cpu_latencies(lc);
  const let::ScheduleResult greedy = let::GreedyScheduler(lc).build();
  const auto ours = let::worst_case_latencies(
      lc, greedy.schedule, let::ReadinessSemantics::kProposed);
  const int t2 = app->find_task("tau2").value;
  EXPECT_LT(ours.at(t2), cpu.at(t2));
}

}  // namespace
}  // namespace letdma::baseline
