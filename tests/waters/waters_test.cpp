#include "letdma/waters/waters.hpp"

#include <gtest/gtest.h>

#include <set>

#include "letdma/analysis/rta.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/support/error.hpp"

namespace letdma::waters {
namespace {

using support::ms;

TEST(Waters, NineTasksWithChallengePeriods) {
  const auto app = make_waters_app();
  EXPECT_EQ(app->num_tasks(), 9);
  EXPECT_EQ(app->task(app->find_task("LID")).period, ms(33));
  EXPECT_EQ(app->task(app->find_task("DASM")).period, ms(5));
  EXPECT_EQ(app->task(app->find_task("CAN")).period, ms(10));
  EXPECT_EQ(app->task(app->find_task("EKF")).period, ms(15));
  EXPECT_EQ(app->task(app->find_task("LOC")).period, ms(400));
  EXPECT_EQ(app->task(app->find_task("DET")).period, ms(200));
}

TEST(Waters, TaskNamesMatchFigureOrder) {
  const auto& names = task_names();
  ASSERT_EQ(names.size(), 9u);
  EXPECT_EQ(names.front(), "LID");
  EXPECT_EQ(names.back(), "DET");
  const auto app = make_waters_app();
  for (const auto& n : names) {
    EXPECT_NO_THROW(app->find_task(n));
  }
}

TEST(Waters, HyperperiodIs13200ms) {
  const auto app = make_waters_app();
  EXPECT_EQ(app->hyperperiod(), ms(13200));
}

TEST(Waters, HasInterCoreTraffic) {
  const auto app = make_waters_app();
  EXPECT_GE(app->inter_core_edges().size(), 8u);
}

TEST(Waters, BaseSystemSchedulable) {
  const auto app = make_waters_app();
  const auto rta = analysis::analyze(*app);
  EXPECT_TRUE(rta.schedulable);
}

TEST(Waters, SensitivityFeasibleForPaperAlphas) {
  const auto app = make_waters_app();
  for (const double alpha : {0.2, 0.3, 0.4, 0.5}) {
    const auto s = analysis::acquisition_deadlines(*app, alpha);
    EXPECT_TRUE(s.feasible) << "alpha=" << alpha;
  }
}

TEST(Waters, GreedyScheduleValid) {
  const auto app = make_waters_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const auto report = validate_schedule(lc, g.layout, g.schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Waters, LabelScaleAppliesToSizes) {
  WatersOptions small;
  small.label_scale = 0.5;
  const auto app = make_waters_app(small);
  const auto base = make_waters_app();
  for (int l = 0; l < app->num_labels(); ++l) {
    EXPECT_EQ(app->label(model::LabelId{l}).size_bytes,
              base->label(model::LabelId{l}).size_bytes / 2);
  }
}

TEST(Waters, TwoCoreVariantStillBuilds) {
  WatersOptions two;
  two.num_cores = 2;
  const auto app = make_waters_app(two);
  EXPECT_EQ(app->platform().num_cores(), 2);
  EXPECT_FALSE(app->inter_core_edges().empty());
}

TEST(Waters, PipelineFoldingReducesInterCoreLabels) {
  // The explicit 2/3/4-core mappings fold pipeline stages together:
  // fewer cores must mean fewer (or equal) inter-core labels.
  std::size_t prev = 0;
  for (const int cores : {2, 3, 4}) {
    WatersOptions opt;
    opt.num_cores = cores;
    const auto app = make_waters_app(opt);
    std::set<int> labels;
    for (const auto& e : app->inter_core_edges()) {
      labels.insert(e.label.value);
    }
    EXPECT_GE(labels.size(), prev) << cores << " cores";
    prev = labels.size();
  }
}

TEST(Waters, AllMappingsSchedulable) {
  for (const int cores : {2, 3, 4}) {
    WatersOptions opt;
    opt.num_cores = cores;
    const auto app = make_waters_app(opt);
    EXPECT_TRUE(analysis::analyze(*app).schedulable) << cores << " cores";
  }
}

TEST(Waters, CustomDmaParamsPropagate) {
  WatersOptions opt;
  opt.dma.programming_overhead = support::us(1);
  opt.dma.isr_overhead = support::us(2);
  opt.cpu.copy_cost_ns_per_byte = 8.0;
  const auto app = make_waters_app(opt);
  EXPECT_EQ(app->platform().dma().programming_overhead, support::us(1));
  EXPECT_EQ(app->platform().dma().isr_overhead, support::us(2));
  EXPECT_EQ(app->platform().cpu_copy().copy_cost_ns_per_byte, 8.0);
}

TEST(Waters, RejectsBadOptions) {
  WatersOptions bad;
  bad.num_cores = 1;
  EXPECT_THROW(make_waters_app(bad), support::PreconditionError);
  WatersOptions zero;
  zero.label_scale = 0;
  EXPECT_THROW(make_waters_app(zero), support::PreconditionError);
}

TEST(Waters, IntraCorePairsExcluded) {
  const auto app = make_waters_app();
  // EKF -> PLAN share a core: state_est must not be inter-core.
  const model::LabelId state_est = [&] {
    for (int l = 0; l < app->num_labels(); ++l) {
      if (app->label(model::LabelId{l}).name == "state_est") {
        return model::LabelId{l};
      }
    }
    throw support::PreconditionError("missing label");
  }();
  EXPECT_FALSE(app->is_inter_core(state_est));
}

}  // namespace
}  // namespace letdma::waters
