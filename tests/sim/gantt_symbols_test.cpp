// Gantt rendering with many tasks: symbol assignment past the digit range
// and stability of the row format.
#include <gtest/gtest.h>

#include "letdma/model/generator.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/sim/trace.hpp"

namespace letdma::sim {
namespace {

TEST(GanttSymbols, ManyTasksUseLetterSymbols) {
  model::GeneratorOptions opt;
  opt.num_tasks = 14;  // beyond the 1-9 digit range
  opt.num_labels = 10;
  opt.num_cores = 3;
  opt.seed = 404;
  const auto app = generate_application(opt);
  let::LetComms lc(*app);
  if (lc.comms_at_s0().empty()) GTEST_SKIP();
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const SimResult r =
      ProtocolSimulator(lc, &g.schedule, {Mode::kProposedDma, 0}).run();
  const std::string gantt = render_gantt(*app, r);
  // The legend names every task, including letter-coded ones.
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_NE(gantt.find(app->task(model::TaskId{i}).name),
              std::string::npos);
  }
  EXPECT_NE(gantt.find("a = "), std::string::npos);  // 10th task symbol
}

TEST(GanttSymbols, RowsMatchCoreCount) {
  model::GeneratorOptions opt;
  opt.num_cores = 5;
  opt.num_tasks = 6;
  opt.num_labels = 4;
  opt.seed = 17;
  const auto app = generate_application(opt);
  let::LetComms lc(*app);
  if (lc.comms_at_s0().empty()) GTEST_SKIP();
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const SimResult r =
      ProtocolSimulator(lc, &g.schedule, {Mode::kProposedDma, 0}).run();
  const std::string gantt = render_gantt(*app, r);
  for (int k = 1; k <= 5; ++k) {
    EXPECT_NE(gantt.find("P" + std::to_string(k) + "  |"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace letdma::sim
