#include "letdma/sim/simulator.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/baseline/giotto.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/support/error.hpp"

namespace letdma::sim {
namespace {

TEST(Simulator, MeasuredLatencyMatchesAnalyticalModel) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator s(lc, &g.schedule, {Mode::kProposedDma, 0});
  const SimResult r = s.run();
  const auto analytical = let::worst_case_latencies(
      lc, g.schedule, let::ReadinessSemantics::kProposed);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(r.max_latency.at(i), analytical.at(i))
        << app->task(model::TaskId{i}).name;
  }
}

TEST(Simulator, GiottoDmaMatchesAnalyticalModel) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = baseline::giotto_dma_a(lc);
  ProtocolSimulator s(lc, &g.schedule, {Mode::kGiottoDma, 0});
  const SimResult r = s.run();
  const auto analytical = baseline::giotto_dma_latencies(lc, g);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(r.max_latency.at(i), analytical.at(i))
        << app->task(model::TaskId{i}).name;
  }
}

TEST(Simulator, GiottoCpuMatchesAnalyticalModel) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  ProtocolSimulator s(lc, nullptr, {Mode::kGiottoCpu, 0});
  const SimResult r = s.run();
  const auto analytical = baseline::giotto_cpu_latencies(lc);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_EQ(r.max_latency.at(i), analytical.at(i))
        << app->task(model::TaskId{i}).name;
  }
}

TEST(Simulator, AllJobsSimulatedOverHyperperiod) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator s(lc, &g.schedule, {Mode::kProposedDma, 0});
  const SimResult r = s.run();
  // H = 40ms: tau2 has 8 jobs, tau1 4, tau3/tau4 2, tau5/tau6 1 -> 18.
  EXPECT_EQ(r.jobs.size(), 18u);
}

TEST(Simulator, DeadlinesMetOnLightlyLoadedSystem) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator s(lc, &g.schedule, {Mode::kProposedDma, 0});
  const SimResult r = s.run();
  EXPECT_TRUE(r.all_deadlines_met());
  EXPECT_GT(r.dma_busy, 0);
}

TEST(Simulator, JobsFinishInPriorityConsistentOrder) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator s(lc, &g.schedule, {Mode::kProposedDma, 0});
  const SimResult r = s.run();
  for (const JobRecord& j : r.jobs) {
    EXPECT_GE(j.ready, j.release);
    EXPECT_GT(j.finish, j.ready);
  }
}

TEST(Simulator, OverloadedCoreMissesDeadlines) {
  model::Application app{model::Platform(2)};
  const auto p = app.add_task("p", support::ms(10), support::ms(9),
                              model::CoreId{0});
  const auto c = app.add_task("c", support::ms(10), support::ms(9),
                              model::CoreId{0});
  const auto sink = app.add_task("sink", support::ms(10), support::ms(1),
                                 model::CoreId{1});
  app.add_label("x", 1000, p, {sink});
  (void)c;
  app.finalize();
  let::LetComms lc(app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator s(lc, &g.schedule, {Mode::kProposedDma, 0});
  const SimResult r = s.run();
  EXPECT_GT(r.deadline_misses, 0);
}

TEST(Simulator, MultiHyperperiodHorizon) {
  const auto app = testing::make_pair_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  ProtocolSimulator one(lc, &g.schedule, {Mode::kProposedDma, 0});
  ProtocolSimulator three(lc, &g.schedule,
                          {Mode::kProposedDma, 3 * app->hyperperiod()});
  EXPECT_EQ(three.run().jobs.size(), 3 * one.run().jobs.size());
}

TEST(Simulator, DmaModeRequiresSchedule) {
  const auto app = testing::make_pair_app();
  let::LetComms lc(*app);
  EXPECT_THROW(ProtocolSimulator(lc, nullptr, {Mode::kProposedDma, 0}),
               support::PreconditionError);
}

TEST(Simulator, GiottoCpuBlocksCores) {
  // CPU copies steal core time at the highest priority: with a large label
  // the producer-core task's response time inflates versus the DMA mode.
  model::Application app{model::Platform(2)};
  const auto p = app.add_task("p", support::ms(10), support::ms(4),
                              model::CoreId{0});
  const auto c = app.add_task("c", support::ms(10), support::ms(1),
                              model::CoreId{1});
  app.add_label("x", 500'000, p, {c});  // 2 ms CPU copy at 4 ns/B
  app.finalize();
  let::LetComms lc(app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const SimResult dma =
      ProtocolSimulator(lc, &g.schedule, {Mode::kProposedDma, 0}).run();
  const SimResult cpu =
      ProtocolSimulator(lc, nullptr, {Mode::kGiottoCpu, 0}).run();
  EXPECT_GT(cpu.max_response.at(p.value), dma.max_response.at(p.value));
  EXPECT_EQ(cpu.dma_busy, 0);  // no DMA engine involved
  EXPECT_GT(dma.dma_busy, 0);
}

TEST(Simulator, ReadyNeverBeforeRelease) {
  const auto app = testing::make_multireader_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  for (const Mode mode : {Mode::kProposedDma, Mode::kGiottoDma}) {
    const SimResult r =
        ProtocolSimulator(lc, &g.schedule, {mode, 0}).run();
    for (const JobRecord& j : r.jobs) {
      EXPECT_GE(j.ready, j.release);
    }
  }
}

TEST(Simulator, ProposedBeatsGiottoForUrgentTask) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const SimResult proposed =
      ProtocolSimulator(lc, &g.schedule, {Mode::kProposedDma, 0}).run();
  const let::ScheduleResult ga = baseline::giotto_dma_a(lc);
  const SimResult giotto =
      ProtocolSimulator(lc, &ga.schedule, {Mode::kGiottoDma, 0}).run();
  const int t2 = app->find_task("tau2").value;
  EXPECT_LT(proposed.max_latency.at(t2), giotto.max_latency.at(t2));
}

}  // namespace
}  // namespace letdma::sim
