#include "letdma/sim/trace.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/support/error.hpp"

namespace letdma::sim {
namespace {

SimResult simulate_fig1(const model::Application&,
                        const let::LetComms& lc) {
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  return ProtocolSimulator(lc, &g.schedule, {Mode::kProposedDma, 0}).run();
}

TEST(Trace, SpansAreRecorded) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  EXPECT_FALSE(r.let_spans.empty());
  EXPECT_FALSE(r.dma_spans.empty());
  EXPECT_FALSE(r.exec_spans.empty());
  const support::Time horizon = app->hyperperiod();
  for (const LetSpan& s : r.let_spans) {
    EXPECT_LT(s.start, s.end);
    EXPECT_GE(s.core, 0);
    EXPECT_LT(s.core, app->platform().num_cores());
    EXPECT_LT(s.start, horizon + support::ms(1));
  }
  for (const ExecSpan& s : r.exec_spans) {
    EXPECT_LT(s.start, s.end);
    EXPECT_GE(s.task, 0);
  }
}

TEST(Trace, ExecSpansCoverEachJobWcet) {
  // Sum of execution spans per task (minus LET holes inside them) must be
  // at least jobs * wcet; with the coarse spans including holes, the sum
  // is >= the pure WCET total.
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  std::map<int, support::Time> span_sum;
  for (const ExecSpan& s : r.exec_spans) span_sum[s.task] += s.end - s.start;
  std::map<int, int> job_count;
  for (const JobRecord& j : r.jobs) job_count[j.task] += 1;
  for (const auto& [task, n] : job_count) {
    EXPECT_GE(span_sum[task],
              n * app->task(model::TaskId{task}).wcet);
  }
}

TEST(Trace, GanttRendersAllRows) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  GanttOptions opt;
  opt.to = support::ms(5);
  opt.width = 60;
  const std::string gantt = render_gantt(*app, r, opt);
  EXPECT_NE(gantt.find("P1  |"), std::string::npos);
  EXPECT_NE(gantt.find("P2  |"), std::string::npos);
  EXPECT_NE(gantt.find("DMA |"), std::string::npos);
  EXPECT_NE(gantt.find("legend"), std::string::npos);
  EXPECT_NE(gantt.find('L'), std::string::npos);  // LET activity visible
  EXPECT_NE(gantt.find('#'), std::string::npos);  // DMA activity visible
}

TEST(Trace, GanttWindowAndWidthRespected) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  GanttOptions opt;
  opt.from = support::ms(1);
  opt.to = support::ms(2);
  opt.width = 40;
  const std::string gantt = render_gantt(*app, r, opt);
  // Each row body has exactly `width` characters between the pipes.
  const std::size_t p1 = gantt.find("P1  |");
  ASSERT_NE(p1, std::string::npos);
  const std::size_t open = gantt.find('|', p1);
  const std::size_t close = gantt.find('|', open + 1);
  EXPECT_EQ(close - open - 1, 40u);
}

TEST(Trace, InvalidWindowThrows) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  GanttOptions opt;
  opt.from = support::ms(2);
  opt.to = support::ms(1);
  EXPECT_THROW(render_gantt(*app, r, opt), support::PreconditionError);
  opt.to = support::ms(3);
  opt.width = 0;
  EXPECT_THROW(render_gantt(*app, r, opt), support::PreconditionError);
}

TEST(Trace, DefaultWindowEndsAtLastSpan) {
  const auto app = testing::make_pair_app();
  let::LetComms lc(*app);
  const SimResult r = simulate_fig1(*app, lc);
  const std::string gantt = render_gantt(*app, r);
  EXPECT_NE(gantt.find("t in [0ns"), std::string::npos);
}

}  // namespace
}  // namespace letdma::sim
