// BatchRunner — fixed thread pool with deterministic result ordering.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/engine/adapters.hpp"
#include "letdma/engine/batch.hpp"

namespace letdma {
namespace {

TEST(BatchRunnerTest, MapReturnsResultsInIndexOrder) {
  engine::BatchOptions opt;
  opt.threads = 4;
  const engine::BatchRunner runner(opt);
  EXPECT_EQ(runner.threads(), 4);
  // Later indices finish first so completion order inverts index order.
  const std::vector<int> out =
      runner.map<int>(16, [](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds((16 - i) % 4));
        return static_cast<int>(i) * 3;
      });
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 3);
  }
}

TEST(BatchRunnerTest, RunKeepsOutcomesAlignedWithInstances) {
  // Distinct instances with recognizably different transfer payloads.
  std::vector<std::unique_ptr<model::Application>> apps;
  std::vector<std::unique_ptr<let::LetComms>> comms;
  std::vector<const let::LetComms*> instances;
  for (int i = 0; i < 6; ++i) {
    apps.push_back(testing::make_pair_app(support::ms(10), support::ms(10),
                                          1000 + 500 * i));
    comms.push_back(std::make_unique<let::LetComms>(*apps.back()));
    instances.push_back(comms.back().get());
  }

  engine::GreedyEngine greedy;
  engine::BatchOptions opt;
  opt.threads = 3;
  const engine::BatchRunner runner(opt);
  engine::Budget budget;
  budget.wall_sec = 5.0;
  const std::vector<engine::ScheduleOutcome> outcomes =
      runner.run(greedy, instances, budget);

  ASSERT_EQ(outcomes.size(), instances.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].feasible()) << "instance " << i;
    // outcome[i] must be the schedule of instances[i]: its single write
    // transfer carries that instance's label size.
    std::int64_t write_bytes = 0;
    for (const let::DmaTransfer& t : outcomes[i].schedule->s0_transfers) {
      if (t.dir == let::Direction::kWrite) write_bytes += t.bytes;
    }
    EXPECT_EQ(write_bytes, 1000 + 500 * static_cast<std::int64_t>(i));
  }
}

TEST(BatchRunnerTest, DeterministicAcrossThreadCounts) {
  auto run_at = [](int threads) {
    engine::BatchOptions opt;
    opt.threads = threads;
    const engine::BatchRunner runner(opt);
    return runner.map<int>(32, [](std::size_t i) {
      return static_cast<int>(i * i % 97);
    });
  };
  const std::vector<int> one = run_at(1);
  EXPECT_EQ(run_at(2), one);
  EXPECT_EQ(run_at(4), one);
}

TEST(BatchRunnerTest, RethrowsFirstJobError) {
  engine::BatchOptions opt;
  opt.threads = 4;
  const engine::BatchRunner runner(opt);
  EXPECT_THROW(runner.map<int>(8,
                               [](std::size_t i) -> int {
                                 if (i == 5) {
                                   throw std::runtime_error("job 5 failed");
                                 }
                                 return static_cast<int>(i);
                               }),
               std::runtime_error);
}

}  // namespace
}  // namespace letdma
