// letdma::engine — uniform scheduler interface, adapters, shared
// incumbent, cooperative cancellation, and the portfolio racer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "../test_fixtures.hpp"
#include "letdma/analysis/rta.hpp"
#include "letdma/engine/adapters.hpp"
#include "letdma/engine/engine.hpp"
#include "letdma/engine/portfolio.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/obs/obs.hpp"
#include "letdma/support/error.hpp"
#include "letdma/waters/waters.hpp"

namespace letdma {
namespace {

let::LetComms waters_comms(std::unique_ptr<model::Application>* keep) {
  auto app = waters::make_waters_app();
  const auto sens = analysis::acquisition_deadlines(*app, 0.2);
  EXPECT_TRUE(sens.feasible);
  analysis::apply_acquisition_deadlines(*app, sens.gamma);
  let::LetComms comms(*app);
  *keep = std::move(app);
  return comms;
}

TEST(SharedIncumbentTest, KeepsStrictlyBestAndCounts) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  const let::ScheduleResult g = let::GreedyScheduler::best_latency_ratio(comms);

  engine::SharedIncumbent sink;
  EXPECT_FALSE(sink.best().has_value());
  EXPECT_TRUE(sink.offer(g, 2.0, "a"));
  EXPECT_FALSE(sink.offer(g, 2.0, "b"));  // ties are not improvements
  EXPECT_FALSE(sink.offer(g, 3.0, "b"));
  EXPECT_TRUE(sink.offer(g, 1.0, "b"));
  EXPECT_EQ(sink.improvements(), 2);
  ASSERT_TRUE(sink.best().has_value());
  EXPECT_DOUBLE_EQ(sink.best()->objective, 1.0);
  EXPECT_EQ(sink.best()->strategy, "b");
}

TEST(EngineFactoryTest, ThrowsOnUnknownName) {
  EXPECT_THROW(engine::make_scheduler("simulated-annealing"),
               support::PreconditionError);
}

TEST(GreedyEngineTest, SolvesFig1AndPublishes) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  engine::GreedyEngine greedy;
  engine::SharedIncumbent sink;
  const engine::ScheduleOutcome out = greedy.solve(comms, {}, sink);
  EXPECT_EQ(out.status, engine::Status::kFeasible);
  ASSERT_TRUE(out.feasible());
  EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule));
  EXPECT_GT(out.objective, 0.0);
  EXPECT_EQ(out.strategy, "greedy");
  EXPECT_FALSE(out.cancelled);
  ASSERT_TRUE(sink.best().has_value());
  EXPECT_DOUBLE_EQ(sink.best()->objective, out.objective);
}

TEST(GreedyEngineTest, MinTransfersObjectiveCountsTransfers) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  engine::GreedyEngineOptions opt;
  opt.objective = engine::Objective::kMinTransfers;
  engine::GreedyEngine greedy(opt);
  engine::SharedIncumbent sink;
  const engine::ScheduleOutcome out = greedy.solve(comms, {}, sink);
  ASSERT_TRUE(out.feasible());
  EXPECT_DOUBLE_EQ(
      out.objective,
      static_cast<double>(out.schedule->s0_transfers.size()));
}

TEST(LocalSearchEngineTest, NeverWorseThanGreedy) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  const engine::ScheduleOutcome greedy =
      engine::solve_with("greedy", comms,
                         engine::Objective::kMinMaxLatencyRatio, 5.0);
  const engine::ScheduleOutcome ls = engine::solve_with(
      "ls", comms, engine::Objective::kMinMaxLatencyRatio, 5.0);
  ASSERT_TRUE(greedy.feasible());
  ASSERT_TRUE(ls.feasible());
  EXPECT_TRUE(engine::schedule_valid(comms, *ls.schedule));
  EXPECT_LE(ls.objective, greedy.objective + 1e-12);
}

TEST(MilpEngineTest, WarmStartsFromSinkIncumbent) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  engine::SharedIncumbent sink;
  engine::GreedyEngine greedy;
  const engine::ScheduleOutcome seed = greedy.solve(comms, {}, sink);
  ASSERT_TRUE(seed.feasible());

  engine::MilpEngine milp;
  engine::Budget budget;
  budget.wall_sec = 5.0;
  const engine::ScheduleOutcome out = milp.solve(comms, budget, sink);
  ASSERT_TRUE(out.feasible());
  EXPECT_TRUE(out.status == engine::Status::kOptimal ||
              out.status == engine::Status::kFeasible);
  EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule));
  // Warm-started from the sink, the MILP can only match or improve it.
  EXPECT_LE(out.objective, seed.objective + 1e-12);
}

TEST(MilpEngineTest, StopTokenCancelsAndReturnsIncumbent) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  std::atomic<bool> stop{false};
  engine::SharedIncumbent sink;
  engine::MilpEngine milp;
  engine::Budget budget;
  budget.wall_sec = 60.0;  // the token, not the budget, ends this solve
  budget.stop = &stop;

  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    stop.store(true);
  });
  const auto t0 = std::chrono::steady_clock::now();
  const engine::ScheduleOutcome out = milp.solve(comms, budget, sink);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trigger.join();

  EXPECT_TRUE(out.cancelled);
  // Cancellation behaves exactly like a timeout: the warm-start incumbent
  // is returned, not thrown away.
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(out.status, engine::Status::kFeasible);
  EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule));
  EXPECT_LT(wall, 30.0);  // returned promptly, nowhere near the budget
}

TEST(PortfolioTest, ValidAndNoWorseThanGreedyAcrossConcurrency) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  const engine::ScheduleOutcome greedy =
      engine::solve_with("greedy", comms,
                         engine::Objective::kMinMaxLatencyRatio, 5.0);
  ASSERT_TRUE(greedy.feasible());

  for (const int concurrency : {1, 2, 4}) {
    engine::PortfolioOptions opt;
    opt.objective = engine::Objective::kMinMaxLatencyRatio;
    opt.max_concurrency = concurrency;
    engine::PortfolioScheduler portfolio(opt);
    engine::SharedIncumbent sink;
    engine::Budget budget;
    budget.wall_sec = 1.5;
    const engine::ScheduleOutcome out = portfolio.solve(comms, budget, sink);
    ASSERT_TRUE(out.feasible()) << "concurrency " << concurrency;
    EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule))
        << "concurrency " << concurrency;
    EXPECT_LE(out.objective, greedy.objective + 1e-12)
        << "concurrency " << concurrency;
    // The winner is forwarded into the caller's sink.
    ASSERT_TRUE(sink.best().has_value());
    EXPECT_DOUBLE_EQ(sink.best()->objective, out.objective);
  }
}

// Acceptance criterion of the engine layer: on the WATERS case study a
// 2-second portfolio returns a validated schedule whose OBJ-DEL objective
// is no worse than standalone greedy, and the losing workers are
// cooperatively cancelled (observable through the obs counters).
TEST(PortfolioTest, WatersTwoSecondBudgetBeatsGreedyAndCancelsLosers) {
  std::unique_ptr<model::Application> app;
  const let::LetComms comms = waters_comms(&app);

  const engine::ScheduleOutcome greedy =
      engine::solve_with("greedy", comms,
                         engine::Objective::kMinMaxLatencyRatio, 5.0);
  ASSERT_TRUE(greedy.feasible());

  obs::Registry& reg = obs::Registry::instance();
  reg.reset_counters();

  engine::PortfolioScheduler portfolio;
  engine::SharedIncumbent sink;
  engine::Budget budget;
  budget.wall_sec = 2.0;
  const engine::ScheduleOutcome out = portfolio.solve(comms, budget, sink);

  ASSERT_TRUE(out.feasible());
  const let::ValidationReport report = let::validate_schedule(
      comms, out.schedule->layout, out.schedule->schedule);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_LE(out.objective, greedy.objective + 1e-12);

  // All three strategies launched; the MILP cannot prove optimality on
  // WATERS in 2s, so at least one worker must have been cancelled by the
  // shared stop token at the deadline.
  EXPECT_EQ(reg.counter_value("engine.portfolio.launched"), 3);
  EXPECT_GE(reg.counter_value("engine.portfolio.cancelled"), 1);
  EXPECT_GE(reg.counter_value("engine.incumbents"), 1);
  EXPECT_EQ(reg.counter_value("engine.portfolio.win." + out.strategy), 1);
}

TEST(PortfolioTest, ExternalStopTokenCancelsWholeRace) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  std::atomic<bool> stop{false};
  engine::PortfolioScheduler portfolio;
  engine::SharedIncumbent sink;
  engine::Budget budget;
  budget.wall_sec = 60.0;
  budget.stop = &stop;

  std::thread trigger([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    stop.store(true);
  });
  const auto t0 = std::chrono::steady_clock::now();
  const engine::ScheduleOutcome out = portfolio.solve(comms, budget, sink);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  trigger.join();

  EXPECT_TRUE(out.cancelled);
  EXPECT_TRUE(out.feasible());  // the heuristics finished before the stop
  EXPECT_LT(wall, 30.0);
}

}  // namespace
}  // namespace letdma
