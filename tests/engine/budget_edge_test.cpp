// Budget edge cases across every engine: a zero, negative, or
// already-cancelled budget must return a well-defined ScheduleOutcome
// promptly — kTimeout on an empty sink, kFeasible serving the sink's best
// when one is already published — never a hang, crash, or race.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "../test_fixtures.hpp"
#include "letdma/engine/engine.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/let/let_comms.hpp"

namespace letdma::engine {
namespace {

using letdma::testing::make_fig1_app;

const std::vector<std::string> kEngines = {"greedy", "ls",     "milp",
                                           "portfolio", "giotto", "supervised"};

/// Runs `solve` and asserts it returns within a generous wall-clock bound
/// (the point is "no hang", not a tight latency SLO).
ScheduleOutcome solve_promptly(const std::string& name,
                               const let::LetComms& comms,
                               const Budget& budget, IncumbentSink& sink) {
  const auto t0 = std::chrono::steady_clock::now();
  const ScheduleOutcome out =
      make_scheduler(name)->solve(comms, budget, sink);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, 5.0) << name << " did not return promptly";
  return out;
}

TEST(BudgetEdge, ZeroBudgetEmptySinkIsTimeout) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    const ScheduleOutcome out = solve_promptly(name, comms, {0.0}, sink);
    EXPECT_EQ(out.status, Status::kTimeout) << name;
    EXPECT_FALSE(out.feasible()) << name;
  }
}

TEST(BudgetEdge, NegativeBudgetEmptySinkIsTimeout) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    const ScheduleOutcome out = solve_promptly(name, comms, {-1.0}, sink);
    EXPECT_EQ(out.status, Status::kTimeout) << name;
    EXPECT_FALSE(out.feasible()) << name;
  }
}

TEST(BudgetEdge, ZeroBudgetServesPrePublishedIncumbent) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult seed =
      let::GreedyScheduler::best_latency_ratio(comms);
  const double seed_obj =
      objective_of(comms, seed, Objective::kMinMaxLatencyRatio);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    ASSERT_TRUE(sink.offer(seed, seed_obj, "pre"));
    const ScheduleOutcome out = solve_promptly(name, comms, {0.0}, sink);
    // An expired budget must still serve the best already-known schedule.
    ASSERT_TRUE(out.feasible()) << name;
    EXPECT_EQ(out.status, Status::kFeasible) << name;
    EXPECT_DOUBLE_EQ(out.objective, seed_obj) << name;
  }
}

TEST(BudgetEdge, PreRaisedStopTokenReturnsPromptly) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  std::atomic<bool> stop{true};
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    Budget budget;
    budget.wall_sec = 60.0;
    budget.stop = &stop;
    const ScheduleOutcome out = solve_promptly(name, comms, budget, sink);
    EXPECT_EQ(out.status, Status::kTimeout) << name;
    EXPECT_TRUE(out.cancelled) << name;
  }
}

TEST(BudgetEdge, PreRaisedStopTokenServesSinkBest) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult seed =
      let::GreedyScheduler::best_latency_ratio(comms);
  const double seed_obj =
      objective_of(comms, seed, Objective::kMinMaxLatencyRatio);
  std::atomic<bool> stop{true};
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    ASSERT_TRUE(sink.offer(seed, seed_obj, "pre"));
    Budget budget;
    budget.stop = &stop;
    const ScheduleOutcome out = solve_promptly(name, comms, budget, sink);
    ASSERT_TRUE(out.feasible()) << name;
    EXPECT_EQ(out.status, Status::kFeasible) << name;
  }
}

TEST(BudgetEdge, RemainingSecTakesTheTighterOfWallAndDeadline) {
  Budget budget;
  budget.wall_sec = 60.0;
  EXPECT_FALSE(budget.has_deadline());
  EXPECT_DOUBLE_EQ(budget.remaining_sec(10.0), 50.0);

  // A deadline 0.5 s out caps remaining below the generous wall budget.
  budget.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  EXPECT_TRUE(budget.has_deadline());
  EXPECT_LE(budget.remaining_sec(), 0.5);
  EXPECT_GT(budget.remaining_sec(), 0.0);
  // The wall clamp still applies when it is the tighter of the two.
  EXPECT_LE(budget.remaining_sec(59.9), 0.1 + 1e-9);
}

TEST(BudgetEdge, ExpiredDeadlineEmptySinkIsTimeout) {
  // wall_sec alone would allow a full solve; the absolute deadline is
  // already in the past, so every engine must bail out promptly.
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    Budget budget;
    budget.wall_sec = 60.0;
    budget.deadline =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const ScheduleOutcome out = solve_promptly(name, comms, budget, sink);
    EXPECT_EQ(out.status, Status::kTimeout) << name;
    EXPECT_FALSE(out.feasible()) << name;
  }
}

TEST(BudgetEdge, ExpiredDeadlineServesPrePublishedIncumbent) {
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult seed =
      let::GreedyScheduler::best_latency_ratio(comms);
  const double seed_obj =
      objective_of(comms, seed, Objective::kMinMaxLatencyRatio);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    ASSERT_TRUE(sink.offer(seed, seed_obj, "pre"));
    Budget budget;
    budget.wall_sec = 60.0;
    budget.deadline =
        std::chrono::steady_clock::now() - std::chrono::seconds(1);
    const ScheduleOutcome out = solve_promptly(name, comms, budget, sink);
    ASSERT_TRUE(out.feasible()) << name;
    EXPECT_EQ(out.status, Status::kFeasible) << name;
    EXPECT_DOUBLE_EQ(out.objective, seed_obj) << name;
  }
}

TEST(BudgetEdge, TinyPositiveBudgetStillWellDefined) {
  // 1 ms is enough for greedy on fig1 but not for the MILP; whatever each
  // engine manages, the outcome must be one of the four defined statuses
  // with schedule presence matching the status contract.
  const auto app = make_fig1_app();
  const let::LetComms comms(*app);
  for (const std::string& name : kEngines) {
    SharedIncumbent sink;
    const ScheduleOutcome out = solve_promptly(name, comms, {0.001}, sink);
    const bool should_have_schedule =
        out.status == Status::kOptimal || out.status == Status::kFeasible;
    EXPECT_EQ(out.feasible(), should_have_schedule) << name;
  }
}

}  // namespace
}  // namespace letdma::engine
