// ThreadSanitizer smoke test for the shared-incumbent path: several
// portfolio races in a row exercise concurrent offer()/best() calls, the
// shared stop token, and the MILP warm-start polling loop. The assertions
// are deliberately light — under -fsanitize=thread (the tsan CI job) the
// value of this test is that it finishes without a data-race report.
#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/engine/portfolio.hpp"
#include "letdma/let/validate.hpp"

namespace letdma {
namespace {

TEST(PortfolioTsanSmoke, RepeatedRacesOnSharedIncumbent) {
  const auto app = testing::make_fig1_app();
  let::LetComms comms(*app);
  for (int round = 0; round < 3; ++round) {
    engine::PortfolioScheduler portfolio;
    engine::SharedIncumbent sink;
    engine::Budget budget;
    budget.wall_sec = 0.5;
    const engine::ScheduleOutcome out = portfolio.solve(comms, budget, sink);
    ASSERT_TRUE(out.feasible()) << "round " << round;
    EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule));
  }
}

TEST(PortfolioTsanSmoke, ConcurrencyCappedRace) {
  const auto app = testing::make_multireader_app();
  let::LetComms comms(*app);
  engine::PortfolioOptions opt;
  opt.max_concurrency = 2;
  engine::PortfolioScheduler portfolio(opt);
  engine::SharedIncumbent sink;
  engine::Budget budget;
  budget.wall_sec = 0.5;
  const engine::ScheduleOutcome out = portfolio.solve(comms, budget, sink);
  ASSERT_TRUE(out.feasible());
  EXPECT_TRUE(engine::schedule_valid(comms, *out.schedule));
}

}  // namespace
}  // namespace letdma
