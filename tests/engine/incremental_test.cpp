#include "letdma/engine/incremental.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "../test_fixtures.hpp"
#include "letdma/let/let_comms.hpp"
#include "letdma/model/diff.hpp"

namespace letdma::engine {
namespace {

using model::CoreId;
using model::TaskId;
using support::ms;

/// Fig.1 system with lB's size as a knob (the one-label diff stream).
std::unique_ptr<model::Application> make_variant(std::int64_t lb_bytes) {
  auto app = std::make_unique<model::Application>(model::Platform(2));
  const TaskId t1 = app->add_task("tau1", ms(10), ms(2), CoreId{0});
  const TaskId t3 = app->add_task("tau3", ms(20), ms(4), CoreId{0});
  const TaskId t5 = app->add_task("tau5", ms(40), ms(8), CoreId{0});
  const TaskId t2 = app->add_task("tau2", ms(5), ms(1), CoreId{1});
  const TaskId t4 = app->add_task("tau4", ms(20), ms(4), CoreId{1});
  const TaskId t6 = app->add_task("tau6", ms(40), ms(8), CoreId{1});
  app->add_label("lA", 2000, t1, {t2});
  app->add_label("lB", lb_bytes, t3, {t4});
  app->add_label("lC", 8000, t5, {t6});
  app->add_label("lD", 1000, t2, {t1});
  app->add_label("lE", 3000, t4, {t3});
  app->add_label("lF", 6000, t6, {t5});
  app->finalize();
  return app;
}

IncrementalOptions cheap_options() {
  IncrementalOptions options;
  options.guard.chain = {"ls", "greedy", "giotto"};
  return options;
}

/// Cold supervised solve of one instance, as the "previous" state.
let::ScheduleResult solve_prev(const let::LetComms& comms) {
  GuardOptions g;
  g.chain = {"ls", "greedy", "giotto"};
  const auto [outcome, record] = solve_supervised(comms, g, 2.0);
  EXPECT_TRUE(outcome.feasible());
  return *outcome.schedule;
}

TEST(Incremental, RepairServesOnAWarmStart) {
  const auto before = make_variant(4000);
  const auto after = make_variant(9000);
  const let::LetComms before_comms(*before);
  const let::LetComms after_comms(*after);
  const let::ScheduleResult prev = solve_prev(before_comms);
  const model::ApplicationDiff d = model::diff(*before, *after);

  IncrementalScheduler incremental(cheap_options());
  SharedIncumbent sink;
  WarmStart warm;
  warm.schedule = &prev;
  warm.diff = &d;
  const ScheduleOutcome out =
      incremental.solve(after_comms, Budget{2.0}, sink, warm);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(out.strategy, "repair");
  EXPECT_TRUE(schedule_valid(after_comms, *out.schedule));
  const IncrementalRecord& record = incremental.last_record();
  EXPECT_TRUE(record.warm_supplied);
  EXPECT_TRUE(record.repair_attempted);
  EXPECT_TRUE(record.repair_served);
  EXPECT_FALSE(record.fell_through);
  // The served repair is certified like a fresh solve.
  EXPECT_TRUE(certify_outcome(after_comms, out,
                              Objective::kMinMaxLatencyRatio)
                  .certified());
}

TEST(Incremental, NoWarmStartFallsThroughToTheSupervisedChain) {
  const auto app = testing::make_fig1_app();
  const let::LetComms comms(*app);
  IncrementalScheduler incremental(cheap_options());
  SharedIncumbent sink;
  const ScheduleOutcome out = incremental.solve(comms, Budget{2.0}, sink);
  ASSERT_TRUE(out.feasible());
  const IncrementalRecord& record = incremental.last_record();
  EXPECT_FALSE(record.warm_supplied);
  EXPECT_FALSE(record.repair_attempted);
  EXPECT_TRUE(record.fell_through);
}

TEST(Incremental, ZeroBudgetReturnsThePriorCertifiedSchedule) {
  // The zero-budget incremental call must serve the still-certified
  // previous schedule (published into the sink as the "warm" incumbent by
  // the supervised expired path) — not nothing, and not a fresh giotto.
  const auto app = testing::make_fig1_app();
  const let::LetComms comms(*app);
  const let::ScheduleResult prev = solve_prev(comms);
  IncrementalScheduler incremental(cheap_options());
  SharedIncumbent sink;
  WarmStart warm;
  warm.schedule = &prev;  // identity diff: same instance
  Budget spent;
  spent.wall_sec = 0.0;
  const ScheduleOutcome out = incremental.solve(comms, spent, sink, warm);
  ASSERT_TRUE(out.feasible());
  EXPECT_EQ(out.strategy, "warm");
  EXPECT_EQ(out.schedule->s0_transfers.size(), prev.s0_transfers.size());
  EXPECT_DOUBLE_EQ(
      out.objective,
      objective_of(comms, prev, Objective::kMinMaxLatencyRatio));
  const IncrementalRecord& record = incremental.last_record();
  EXPECT_TRUE(record.warm_supplied);
  EXPECT_FALSE(record.repair_attempted);
  EXPECT_TRUE(record.fell_through);
}

TEST(Incremental, FactoryBuildsIt) {
  const auto factory = make_scheduler("incremental");
  ASSERT_NE(factory, nullptr);
  EXPECT_STREQ(factory->name(), "incremental");
}

TEST(Incremental, UntranslatableWarmStartStillProducesASchedule) {
  // A warm start whose diff maps onto a structurally different instance
  // (here: a hint from a different system with no matching comms) must not
  // crash or serve garbage — the chain takes over.
  const auto other = testing::make_multireader_app();
  const auto target = make_variant(4000);
  const let::LetComms other_comms(*other);
  const let::LetComms target_comms(*target);
  const let::ScheduleResult prev = solve_prev(other_comms);
  const model::ApplicationDiff d = model::diff(*other, *target);
  IncrementalScheduler incremental(cheap_options());
  SharedIncumbent sink;
  WarmStart warm;
  warm.schedule = &prev;
  warm.diff = &d;
  const ScheduleOutcome out =
      incremental.solve(target_comms, Budget{2.0}, sink, warm);
  ASSERT_TRUE(out.feasible());
  EXPECT_TRUE(schedule_valid(target_comms, *out.schedule));
  EXPECT_TRUE(certify_outcome(target_comms, out,
                              Objective::kMinMaxLatencyRatio)
                  .certified());
}

}  // namespace
}  // namespace letdma::engine
