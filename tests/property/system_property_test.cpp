// Cross-stack randomized property tests: for generated applications the
// whole pipeline must uphold its invariants — greedy schedules validate,
// the simulator agrees with the analytical latency model, C(t) stays a
// subset of C(s0), and the MILP never does worse than its warm start.
#include <gtest/gtest.h>

#include "letdma/baseline/giotto.hpp"
#include "letdma/let/milp_scheduler.hpp"
#include "letdma/let/validate.hpp"
#include "letdma/model/generator.hpp"
#include "letdma/sim/simulator.hpp"

namespace letdma {
namespace {

using model::GeneratorOptions;

/// Structural validation options: deadline/capacity feasibility is a
/// property of the workload, not of the scheduler; correctness of the
/// schedule construction is what these tests pin down.
let::ValidationOptions structural() {
  let::ValidationOptions opt;
  opt.check_deadlines = false;
  opt.check_slot_capacity = false;
  opt.check_theorem1 = true;
  return opt;
}

GeneratorOptions seeded(int seed) {
  GeneratorOptions opt;
  opt.seed = static_cast<std::uint64_t>(seed) * 2654435761u + 17u;
  opt.num_cores = 2 + seed % 3;
  opt.num_tasks = 4 + seed % 6;
  opt.num_labels = 3 + seed % 8;
  return opt;
}

class GeneratedSystem : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedSystem, GreedySchedulesValidateUnderEveryStrategy) {
  const auto app = generate_application(seeded(GetParam()));
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) return;  // all labels landed intra-core
  for (const let::GreedyStrategy s :
       {let::GreedyStrategy::kUrgencyFirst, let::GreedyStrategy::kWriteBatched,
        let::GreedyStrategy::kReadBatched}) {
    const let::ScheduleResult r = let::GreedyScheduler(comms, {s}).build();
    const let::ValidationReport rep =
        validate_schedule(comms, r.layout, r.schedule, structural());
    EXPECT_TRUE(rep.ok()) << "strategy=" << static_cast<int>(s) << "\n"
                          << rep.summary();
  }
}

TEST_P(GeneratedSystem, SimulatorMatchesAnalyticalLatency) {
  const auto app = generate_application(seeded(GetParam()));
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) return;
  const let::ScheduleResult g = let::GreedyScheduler(comms).build();
  for (const auto sem : {let::ReadinessSemantics::kProposed,
                         let::ReadinessSemantics::kGiotto}) {
    const auto analytical = let::worst_case_latencies(comms, g.schedule, sem);
    const sim::Mode mode = sem == let::ReadinessSemantics::kProposed
                               ? sim::Mode::kProposedDma
                               : sim::Mode::kGiottoDma;
    const sim::SimResult sr =
        sim::ProtocolSimulator(comms, &g.schedule, {mode, 0}).run();
    for (int task = 0; task < static_cast<int>(analytical.size()); ++task) {
      EXPECT_EQ(sr.max_latency.at(task),
                analytical[static_cast<std::size_t>(task)])
          << app->task(model::TaskId{task}).name;
    }
  }
}

TEST_P(GeneratedSystem, CommunicationsAtAnyInstantAreSubsetOfS0) {
  const auto app = generate_application(seeded(GetParam()));
  let::LetComms comms(*app);
  const auto s0 = comms.comms_at_s0();
  for (const support::Time t : comms.required_instants()) {
    for (const let::Communication& c : comms.comms_at(t)) {
      EXPECT_TRUE(std::binary_search(s0.begin(), s0.end(), c));
    }
  }
}

TEST_P(GeneratedSystem, GiottoBaselinesValidate) {
  const auto app = generate_application(seeded(GetParam()));
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) return;
  let::ValidationOptions opt = structural();
  opt.semantics = let::ReadinessSemantics::kGiotto;
  const let::ScheduleResult a = baseline::giotto_dma_a(comms);
  EXPECT_TRUE(validate_schedule(comms, a.layout, a.schedule, opt).ok());
  const let::ScheduleResult greedy = let::GreedyScheduler(comms).build();
  let::ValidationOptions opt_b = opt;
  opt_b.check_theorem1 = false;  // Giotto-B may split on derived instants
  const let::ScheduleResult b = baseline::giotto_dma_b(comms, greedy.layout);
  EXPECT_TRUE(validate_schedule(comms, b.layout, b.schedule, opt_b).ok());
}

TEST_P(GeneratedSystem, ProposedNeverWorseThanGiottoPerTask) {
  const auto app = generate_application(seeded(GetParam()));
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) return;
  const let::ScheduleResult g = let::GreedyScheduler(comms).build();
  const auto ours = let::worst_case_latencies(
      comms, g.schedule, let::ReadinessSemantics::kProposed);
  const auto same_schedule_giotto = let::worst_case_latencies(
      comms, g.schedule, let::ReadinessSemantics::kGiotto);
  for (std::size_t task = 0; task < ours.size(); ++task) {
    EXPECT_LE(ours[task], same_schedule_giotto.at(task));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedSystem, ::testing::Range(0, 25));

class GeneratedMilp : public ::testing::TestWithParam<int> {};

TEST_P(GeneratedMilp, SolutionValidatesAndBeatsWarmStart) {
  GeneratorOptions opt = seeded(GetParam());
  opt.num_tasks = 4;
  opt.num_labels = 3;
  opt.num_cores = 2;
  const auto app = generate_application(opt);
  let::LetComms comms(*app);
  if (comms.comms_at_s0().empty()) return;
  const let::ScheduleResult greedy =
      let::GreedyScheduler::best_transfer_count(comms);
  let::MilpSchedulerOptions mopt;
  mopt.objective = let::MilpObjective::kMinTransfers;
  mopt.solver.time_limit_sec = 10;
  const auto r = let::MilpScheduler(comms, mopt).solve();
  ASSERT_TRUE(r.feasible());
  EXPECT_LE(r.dma_transfers_at_s0,
            static_cast<int>(greedy.s0_transfers.size()));
  const let::ValidationReport rep = validate_schedule(
      comms, r.schedule->layout, r.schedule->schedule, structural());
  EXPECT_TRUE(rep.ok()) << rep.summary();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratedMilp, ::testing::Range(0, 8));

}  // namespace
}  // namespace letdma
