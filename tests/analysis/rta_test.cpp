#include "letdma/analysis/rta.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/support/error.hpp"

namespace letdma::analysis {
namespace {

using model::CoreId;
using model::TaskId;
using support::ms;

TEST(ResponseTime, NoInterference) {
  const TaskParams t{ms(2), ms(10), 0, ms(10)};
  const auto r = response_time(t, {}, ms(10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, ms(2));
}

TEST(ResponseTime, ClassicTwoTaskExample) {
  // hp: C=1, T=4; task: C=2, T=10 -> w = 2 + ceil(w/4)*1 -> w = 3.
  const TaskParams hp{ms(1), ms(4), 0, ms(4)};
  const TaskParams t{ms(2), ms(10), 0, ms(10)};
  const auto r = response_time(t, {hp}, ms(10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, ms(3));
}

TEST(ResponseTime, MultipleInterferers) {
  // Liu-Layland style: C1=1/T1=3, C2=1/T2=5, task C=3/T=20.
  // w = 3 + ceil(w/3) + ceil(w/5): w0=3 -> 3+1+1=5 -> 3+2+1=6 -> 3+2+2=7
  //  -> 3+3+2=8 -> 3+3+2=8. R = 8.
  const TaskParams h1{ms(1), ms(3), 0, ms(3)};
  const TaskParams h2{ms(1), ms(5), 0, ms(5)};
  const TaskParams t{ms(3), ms(20), 0, ms(20)};
  const auto r = response_time(t, {h1, h2}, ms(20));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, ms(8));
}

TEST(ResponseTime, JitterOfInterfererAddsCarryIn) {
  const TaskParams hp{ms(1), ms(4), ms(3), ms(4)};  // jittery interferer
  const TaskParams t{ms(2), ms(10), 0, ms(10)};
  // w = 2 + ceil((w+3)/4): w0=2 -> 2+2=4 -> 2+2=4. R = 4 (vs 3 w/o jitter).
  const auto r = response_time(t, {hp}, ms(10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, ms(4));
}

TEST(ResponseTime, OwnJitterAddsToResponse) {
  const TaskParams t{ms(2), ms(10), ms(5), ms(10)};
  const auto r = response_time(t, {}, ms(10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, ms(7));
}

TEST(ResponseTime, UnschedulableReturnsNullopt) {
  const TaskParams hp{ms(3), ms(4), 0, ms(4)};  // 75% hp utilization
  const TaskParams t{ms(4), ms(10), 0, ms(10)};
  EXPECT_FALSE(response_time(t, {hp}, ms(10)).has_value());
}

TEST(Analyze, Fig1AppSchedulable) {
  const auto app = testing::make_fig1_app();
  const RtaResult r = analyze(*app);
  EXPECT_TRUE(r.schedulable);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_GT(r.slack.at(i), 0) << app->task(TaskId{i}).name;
    EXPECT_LE(r.response.at(i), app->task(TaskId{i}).period);
  }
}

TEST(Analyze, JitterShrinksSlack) {
  const auto app = testing::make_fig1_app();
  const RtaResult base = analyze(*app);
  std::map<int, support::Time> jitter;
  for (int i = 0; i < app->num_tasks(); ++i) jitter[i] = ms(1);
  const RtaResult jittered = analyze(*app, jitter);
  for (int i = 0; i < app->num_tasks(); ++i) {
    EXPECT_LE(jittered.slack.at(i), base.slack.at(i));
  }
}

TEST(Analyze, OverloadedCoreUnschedulable) {
  model::Application app{model::Platform(1)};
  app.add_task("a", ms(10), ms(6), CoreId{0});
  app.add_task("b", ms(10), ms(6), CoreId{0});
  app.finalize();
  EXPECT_FALSE(analyze(app).schedulable);
}

TEST(Sensitivity, GammaScalesWithAlpha) {
  const auto app = testing::make_fig1_app();
  const auto s02 = acquisition_deadlines(*app, 0.2);
  const auto s04 = acquisition_deadlines(*app, 0.4);
  ASSERT_TRUE(s02.feasible);
  ASSERT_TRUE(s04.feasible);
  for (const auto& [task, g] : s02.gamma) {
    EXPECT_LE(g, s04.gamma.at(task));
  }
}

TEST(Sensitivity, AlphaZeroGivesZeroGamma) {
  const auto app = testing::make_fig1_app();
  const auto s = acquisition_deadlines(*app, 0.0);
  ASSERT_TRUE(s.feasible);
  for (const auto& [task, g] : s.gamma) EXPECT_EQ(g, 0);
}

TEST(Sensitivity, RejectsAlphaOutOfRange) {
  const auto app = testing::make_fig1_app();
  EXPECT_THROW(acquisition_deadlines(*app, -0.1), support::PreconditionError);
  EXPECT_THROW(acquisition_deadlines(*app, 1.5), support::PreconditionError);
}

TEST(Sensitivity, ApplyWritesDeadlines) {
  auto app = testing::make_fig1_app();
  const auto s = acquisition_deadlines(*app, 0.3);
  ASSERT_TRUE(s.feasible);
  apply_acquisition_deadlines(*app, s.gamma);
  for (const auto& [task, g] : s.gamma) {
    EXPECT_EQ(app->task(TaskId{task}).acquisition_deadline.value(), g);
  }
}

TEST(Sensitivity, InfeasibleBaseYieldsInfeasible) {
  model::Application app{model::Platform(1)};
  app.add_task("a", ms(10), ms(6), CoreId{0});
  app.add_task("b", ms(10), ms(6), CoreId{0});
  app.finalize();
  const auto s = acquisition_deadlines(app, 0.2);
  EXPECT_FALSE(s.feasible);
  EXPECT_TRUE(s.gamma.empty());
}

}  // namespace
}  // namespace letdma::analysis
