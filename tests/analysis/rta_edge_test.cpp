// Edge cases of the response-time analysis.
#include <gtest/gtest.h>

#include "letdma/analysis/rta.hpp"
#include "letdma/support/error.hpp"

namespace letdma::analysis {
namespace {

using support::ms;

TEST(RtaEdge, ExactlyFullUtilizationHarmonic) {
  // Harmonic set at exactly 100% utilization is schedulable under RM:
  // C1=5/T1=10, C2=10/T2=20.
  const TaskParams hp{ms(5), ms(10), 0, ms(10)};
  const TaskParams lo{ms(10), ms(20), 0, ms(20)};
  const auto r_hp = response_time(hp, {}, ms(10));
  const auto r_lo = response_time(lo, {hp}, ms(20));
  ASSERT_TRUE(r_hp.has_value());
  ASSERT_TRUE(r_lo.has_value());
  EXPECT_EQ(*r_hp, ms(5));
  EXPECT_EQ(*r_lo, ms(20));  // finishes exactly at the deadline
}

TEST(RtaEdge, EpsilonOverFullUtilizationFails) {
  const TaskParams hp{ms(5), ms(10), 0, ms(10)};
  const TaskParams lo{ms(10) + 1, ms(20), 0, ms(20)};
  EXPECT_FALSE(response_time(lo, {hp}, ms(20)).has_value());
}

TEST(RtaEdge, ZeroWcetTask) {
  const TaskParams t{0, ms(10), 0, ms(10)};
  const auto r = response_time(t, {}, ms(10));
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 0);
}

TEST(RtaEdge, JitterAlonePushesPastDeadline) {
  const TaskParams t{ms(2), ms(10), ms(9), ms(10)};
  EXPECT_FALSE(response_time(t, {}, ms(10)).has_value());
}

TEST(RtaEdge, RejectsInvalidParameters) {
  EXPECT_THROW(response_time({ms(1), 0, 0, 0}, {}, ms(10)),
               support::PreconditionError);
  const TaskParams ok{ms(1), ms(10), 0, ms(10)};
  const TaskParams bad_hp{ms(1), 0, 0, 0};
  EXPECT_THROW(response_time(ok, {bad_hp}, ms(10)),
               support::PreconditionError);
}

TEST(RtaEdge, ManyInterferersConverge) {
  std::vector<TaskParams> higher;
  for (int i = 0; i < 10; ++i) {
    higher.push_back({ms(1) / 2, ms(10 + i), 0, ms(10 + i)});
  }
  const TaskParams t{ms(3), ms(100), 0, ms(100)};
  const auto r = response_time(t, higher, ms(100));
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(*r, ms(3));
  EXPECT_LE(*r, ms(100));
}

}  // namespace
}  // namespace letdma::analysis
