#include "letdma/analysis/protocol_rta.hpp"

#include <gtest/gtest.h>

#include "../test_fixtures.hpp"
#include "letdma/let/greedy.hpp"
#include "letdma/support/error.hpp"
#include "letdma/support/math.hpp"

namespace letdma::analysis {
namespace {

using support::ms;

TEST(LetInterference, ExtractsPerCoreDemands) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const auto li = let_interference(lc, g.schedule);
  ASSERT_EQ(li.size(), 2u);
  // Both cores program transfers at s0, so both see interference.
  EXPECT_TRUE(li[0].active());
  EXPECT_TRUE(li[1].active());
  for (const auto& core : li) {
    EXPECT_GT(core.min_separation, 0);
    EXPECT_FALSE(core.demands.empty());
    EXPECT_GE(core.max_burst, app->platform().dma().isr_overhead);
  }
}

TEST(LetInterference, DemandAccountsForProgrammingAndIsr) {
  // Pair app: one write (programmed by core 0) + one read (core 1); the
  // ISR of the write is charged to the next transfer's core (core 1), the
  // read's ISR to its own core (last transfer).
  const auto app = testing::make_pair_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const auto li = let_interference(lc, g.schedule);
  const model::DmaParams& dma = app->platform().dma();
  ASSERT_EQ(li.size(), 2u);
  ASSERT_EQ(li[0].demands.size(), 1u);
  ASSERT_EQ(li[1].demands.size(), 1u);
  EXPECT_EQ(li[0].demands[0].cpu_time, dma.programming_overhead);
  EXPECT_EQ(li[1].demands[0].cpu_time,
            dma.programming_overhead + 2 * dma.isr_overhead);
}

TEST(LetInterference, SingleInstantSeparationIsHyperperiod) {
  const auto app = testing::make_pair_app(ms(10), ms(10));
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const auto li = let_interference(lc, g.schedule);
  EXPECT_EQ(li[0].min_separation, app->hyperperiod());
}

TEST(AnalyzeWithProtocol, Fig1StillSchedulable) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const RtaResult r = analyze_with_protocol(lc, g.schedule);
  EXPECT_TRUE(r.schedulable);
}

TEST(AnalyzeWithProtocol, ResponseNotBetterThanPlainRta) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const RtaResult plain = analyze(*app);
  const RtaResult proto = analyze_with_protocol(lc, g.schedule);
  for (const auto& [task, r] : plain.response) {
    ASSERT_TRUE(proto.response.count(task));
    EXPECT_GE(proto.response.at(task), r)
        << app->task(model::TaskId{task}).name;
  }
}

TEST(AnalyzeWithProtocol, GiottoSemanticsInflateJitter) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const RtaResult proposed =
      analyze_with_protocol(lc, g.schedule,
                            let::ReadinessSemantics::kProposed);
  const RtaResult giotto = analyze_with_protocol(
      lc, g.schedule, let::ReadinessSemantics::kGiotto);
  for (const auto& [task, r] : proposed.response) {
    if (giotto.response.count(task)) {
      EXPECT_GE(giotto.response.at(task), r);
    }
  }
}

TEST(MaxDemandInWindow, HandComputedCalendar) {
  LetInterference li;
  li.demands = {{0, 10}, {100, 20}, {250, 5}};
  const Time h = 400;
  EXPECT_EQ(max_demand_in_window(li, 0, h), 0);
  EXPECT_EQ(max_demand_in_window(li, 1, h), 20);    // hits the largest
  EXPECT_EQ(max_demand_in_window(li, 101, h), 30);  // 0 and 100
  EXPECT_EQ(max_demand_in_window(li, 151, h), 30);  // still 0+100
  EXPECT_EQ(max_demand_in_window(li, 251, h), 35);  // all three
  // A window longer than H wraps: starting at 100 catches 20+5+10(+H)+20.
  EXPECT_EQ(max_demand_in_window(li, 401, h), 55);
  EXPECT_EQ(max_demand_in_window(li, 2 * 400 + 1, h), 2 * 35 + 20);
}

TEST(MaxDemandInWindow, EmptyCalendarIsZero) {
  LetInterference li;
  EXPECT_EQ(max_demand_in_window(li, 1000, 400), 0);
}

TEST(MaxDemandInWindow, NeverExceedsSporadicBound) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const auto lis = let_interference(lc, g.schedule);
  const Time h = app->hyperperiod();
  for (const LetInterference& li : lis) {
    if (!li.active()) continue;
    for (const Time w : {support::us(100), support::ms(1), support::ms(7)}) {
      const Time exact = max_demand_in_window(li, w, h);
      const Time sporadic =
          support::ceil_div(w, li.min_separation) * li.max_burst;
      EXPECT_LE(exact, sporadic);
    }
  }
}

TEST(AnalyzeWithProtocol, DemandBoundNotWorseThanSporadic) {
  const auto app = testing::make_fig1_app();
  let::LetComms lc(*app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const RtaResult sporadic = analyze_with_protocol(
      lc, g.schedule, let::ReadinessSemantics::kProposed,
      InterferenceModel::kSporadic);
  const RtaResult dbf = analyze_with_protocol(
      lc, g.schedule, let::ReadinessSemantics::kProposed,
      InterferenceModel::kDemandBound);
  EXPECT_TRUE(dbf.schedulable);
  for (const auto& [task, r] : dbf.response) {
    if (sporadic.response.count(task)) {
      EXPECT_LE(r, sporadic.response.at(task))
          << app->task(model::TaskId{task}).name;
    }
  }
}

TEST(AnalyzeWithProtocol, HeavyCommunicationBreaksTightTask) {
  // Plain RTA passes, but an 800 KB payload refreshed every 2 ms gives the
  // consumer a readiness jitter of ~1.6 ms — more than its slack.
  model::Application app{model::Platform(2)};
  const auto p = app.add_task("p", ms(2), ms(1) / 5, model::CoreId{0});
  const auto busy = app.add_task("busy", ms(10), ms(4), model::CoreId{1});
  const auto c = app.add_task("c", ms(2), ms(1), model::CoreId{1});
  (void)busy;
  app.add_label("x", 800'000, p, {c});
  app.finalize();
  ASSERT_TRUE(analyze(app).schedulable);
  let::LetComms lc(app);
  const let::ScheduleResult g = let::GreedyScheduler(lc).build();
  const RtaResult r = analyze_with_protocol(lc, g.schedule);
  EXPECT_FALSE(r.schedulable);
}

}  // namespace
}  // namespace letdma::analysis
