#include "letdma/milp/model.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::milp {
namespace {

TEST(Model, AddVariablesOfAllTypes) {
  Model m;
  const Var x = m.add_continuous(0.0, 10.0, "x");
  const Var b = m.add_binary("b");
  const Var k = m.add_integer(1.0, 5.0, "k");
  EXPECT_EQ(m.num_vars(), 3);
  EXPECT_EQ(m.var(x).type, VarType::kContinuous);
  EXPECT_EQ(m.var(b).type, VarType::kBinary);
  EXPECT_EQ(m.var(k).type, VarType::kInteger);
  EXPECT_EQ(m.var(b).ub, 1.0);
  EXPECT_TRUE(m.has_integer_vars());
}

TEST(Model, PureContinuousModelHasNoIntegers) {
  Model m;
  m.add_continuous(0, 1, "x");
  EXPECT_FALSE(m.has_integer_vars());
}

TEST(Model, InvertedBoundsThrow) {
  Model m;
  EXPECT_THROW(m.add_continuous(2.0, 1.0, "x"), support::PreconditionError);
}

TEST(Model, BinaryBoundsOutsideUnitThrow) {
  Model m;
  EXPECT_THROW(m.add_var(VarType::kBinary, 0.0, 2.0, "b"),
               support::PreconditionError);
}

TEST(Model, ConstraintFoldsConstantIntoRhs) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  const int row = m.add_constraint(2.0 * x + 5.0, Sense::kLe, 9.0, "c");
  EXPECT_DOUBLE_EQ(m.constraint(row).rhs, 4.0);
  EXPECT_DOUBLE_EQ(m.constraint(row).expr.constant(), 0.0);
}

TEST(Model, ConstraintWithUnknownVarThrows) {
  Model m;
  m.add_continuous(0, 1, "x");
  EXPECT_THROW(m.add_constraint(LinExpr(Var{7}), Sense::kLe, 1.0, "bad"),
               support::PreconditionError);
}

TEST(Model, IsFeasibleChecksEverything) {
  Model m;
  const Var x = m.add_continuous(0.0, 10.0, "x");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(x) + LinExpr(b), Sense::kLe, 5.0, "c1");
  m.add_constraint(LinExpr(x) - LinExpr(b), Sense::kGe, 1.0, "c2");

  EXPECT_TRUE(m.is_feasible({2.0, 1.0}));
  EXPECT_FALSE(m.is_feasible({2.0, 0.5}));   // fractional binary
  EXPECT_FALSE(m.is_feasible({-1.0, 0.0}));  // bound violation
  EXPECT_FALSE(m.is_feasible({6.0, 0.0}));   // c1 violated
  EXPECT_FALSE(m.is_feasible({0.0, 0.0}));   // c2 violated
  EXPECT_FALSE(m.is_feasible({2.0}));        // wrong arity
}

TEST(Model, EqualitySenseFeasibility) {
  Model m;
  const Var x = m.add_continuous(0.0, 10.0, "x");
  m.add_constraint(LinExpr(x), Sense::kEq, 3.0, "eq");
  EXPECT_TRUE(m.is_feasible({3.0}));
  EXPECT_FALSE(m.is_feasible({3.1}));
}

TEST(Model, ObjectiveValue) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  m.set_objective(3.0 * x + 1.0, ObjSense::kMinimize);
  EXPECT_DOUBLE_EQ(m.objective_value({2.0}), 7.0);
}

TEST(Model, SetVarBoundsTightens) {
  Model m;
  const Var x = m.add_integer(0, 10, "x");
  m.set_var_bounds(x, 2.0, 3.0);
  EXPECT_EQ(m.var(x).lb, 2.0);
  EXPECT_EQ(m.var(x).ub, 3.0);
  EXPECT_THROW(m.set_var_bounds(x, 5.0, 4.0), support::PreconditionError);
}

TEST(Model, LpStringContainsSections) {
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  const Var b = m.add_binary("sel");
  m.add_constraint(LinExpr(x) + 2.0 * b, Sense::kLe, 4.0, "cap");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const std::string lp = m.to_lp_string();
  EXPECT_NE(lp.find("Maximize"), std::string::npos);
  EXPECT_NE(lp.find("Subject To"), std::string::npos);
  EXPECT_NE(lp.find("Bounds"), std::string::npos);
  EXPECT_NE(lp.find("Generals"), std::string::npos);
  EXPECT_NE(lp.find("sel"), std::string::npos);
  EXPECT_NE(lp.find("cap"), std::string::npos);
}

}  // namespace
}  // namespace letdma::milp
