// MilpStats instrumentation: the solver must record when incumbents were
// found, sample the optimality gap, and route its diagnostics through the
// obs logging facility.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "letdma/milp/model.hpp"
#include "letdma/milp/solver.hpp"
#include "letdma/obs/obs.hpp"

namespace letdma::milp {
namespace {

constexpr double kTol = 1e-6;

/// A knapsack with enough items to force real branching.
Model make_knapsack(int items) {
  Model m;
  LinExpr weight;
  LinExpr profit;
  for (int i = 0; i < items; ++i) {
    const Var x = m.add_binary("x" + std::to_string(i));
    weight += static_cast<double>(3 + (i * 7) % 11) * x;
    profit += static_cast<double>(5 + (i * 13) % 17) * x;
  }
  m.add_constraint(weight, Sense::kLe, 4.0 * items / 3.0, "capacity");
  m.set_objective(profit, ObjSense::kMaximize);
  return m;
}

TEST(MilpStats, IncumbentTimelineIsPopulated) {
  Model m = make_knapsack(14);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);

  EXPECT_GE(r.stats.first_incumbent_sec, 0.0)
      << "an optimal solve must have found at least one incumbent";
  ASSERT_FALSE(r.stats.incumbents.empty());
  EXPECT_EQ(r.stats.incumbent_improvements(),
            static_cast<int>(r.stats.incumbents.size()));

  // The timeline is causally ordered and ends at the reported optimum.
  double prev_t = 0.0;
  for (const IncumbentSample& s : r.stats.incumbents) {
    EXPECT_GE(s.t_sec, prev_t);
    EXPECT_GE(s.nodes, 0);
    prev_t = s.t_sec;
  }
  EXPECT_NEAR(r.stats.incumbents.front().t_sec, r.stats.first_incumbent_sec,
              kTol);
  EXPECT_NEAR(r.stats.incumbents.back().objective, r.objective, kTol);
  EXPECT_GT(r.stats.nodes_explored, 0);
  EXPECT_GE(r.stats.wall_sec, 0.0);
}

TEST(MilpStats, NoIncumbentOnInfeasibleProblem) {
  Model m;
  const Var x = m.add_integer(0, 1, "x");
  m.add_constraint(LinExpr(x), Sense::kGe, 0.4, "lo");
  m.add_constraint(LinExpr(x), Sense::kLe, 0.6, "hi");
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kInfeasible);
  EXPECT_LT(r.stats.first_incumbent_sec, 0.0);
  EXPECT_TRUE(r.stats.incumbents.empty());
  EXPECT_EQ(r.stats.incumbent_improvements(), 0);
}

TEST(MilpStats, GapSamplesAreWellFormed) {
  // Large enough that the 256-node sampling cadence fires at least once
  // only on slow machines — so only check invariants, not presence.
  Model m = make_knapsack(18);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  for (const GapSample& g : r.stats.gap_timeline) {
    EXPECT_GE(g.gap, -kTol);
    EXPECT_GE(g.t_sec, 0.0);
    EXPECT_GE(g.nodes, 0);
  }
}

/// Captures log events routed through the obs registry.
class LogCapture : public obs::Sink {
 public:
  void consume(const obs::Event& event) override {
    if (event.phase != obs::Phase::kLog) return;
    std::lock_guard<std::mutex> lock(mutex_);
    if (!event.args.empty()) {
      lines_.push_back(event.category + ": " +
                       std::get<std::string>(event.args[0].value));
    }
  }
  bool wants_logs() const override { return true; }

  std::vector<std::string> lines() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

TEST(MilpStats, LogOptionRoutesThroughObs) {
  auto capture = std::make_shared<LogCapture>();
  obs::Registry::instance().attach(capture);

  Model m = make_knapsack(10);
  MilpOptions opt;
  opt.log = true;
  MilpSolver solver(m, opt);
  const MilpResult r = solver.solve();
  obs::Registry::instance().detach(capture);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);

  bool saw_incumbent_line = false;
  for (const std::string& line : capture->lines()) {
    if (line.find("milp: incumbent") != std::string::npos) {
      saw_incumbent_line = true;
    }
  }
  EXPECT_TRUE(saw_incumbent_line)
      << "MilpOptions::log must emit incumbent lines via obs::log";
}

}  // namespace
}  // namespace letdma::milp
