#include "letdma/milp/expr.hpp"

#include <gtest/gtest.h>

#include "letdma/support/error.hpp"

namespace letdma::milp {
namespace {

TEST(LinExpr, DefaultIsZero) {
  LinExpr e;
  EXPECT_TRUE(e.terms().empty());
  EXPECT_EQ(e.constant(), 0.0);
}

TEST(LinExpr, FromConstantAndVar) {
  LinExpr c(3.5);
  EXPECT_EQ(c.constant(), 3.5);
  LinExpr v(Var{2});
  ASSERT_EQ(v.terms().size(), 1u);
  EXPECT_EQ(v.terms()[0].coef, 1.0);
  EXPECT_EQ(v.terms()[0].var.index, 2);
}

TEST(LinExpr, OperatorComposition) {
  const Var x{0}, y{1};
  LinExpr e = 2.0 * x + y - 3.0;
  e.normalize();
  EXPECT_EQ(e.terms().size(), 2u);
  EXPECT_EQ(e.constant(), -3.0);
  EXPECT_DOUBLE_EQ(e.evaluate({4.0, 5.0}), 2 * 4 + 5 - 3);
}

TEST(LinExpr, NormalizeMergesDuplicates) {
  const Var x{0};
  LinExpr e = 2.0 * x + 3.0 * x;
  e.normalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_DOUBLE_EQ(e.terms()[0].coef, 5.0);
}

TEST(LinExpr, NormalizeDropsZeroCoefficients) {
  const Var x{0}, y{1};
  LinExpr e = 1.0 * x - 1.0 * x + 2.0 * y;
  e.normalize();
  ASSERT_EQ(e.terms().size(), 1u);
  EXPECT_EQ(e.terms()[0].var.index, 1);
}

TEST(LinExpr, Negation) {
  const Var x{0};
  LinExpr e = -(2.0 * x + 1.0);
  EXPECT_DOUBLE_EQ(e.evaluate({3.0}), -7.0);
}

TEST(LinExpr, ScalarMultiplication) {
  const Var x{0};
  LinExpr e = (x + 1.0) * 4.0;
  EXPECT_DOUBLE_EQ(e.evaluate({2.0}), 12.0);
  LinExpr f = 4.0 * (LinExpr(x) + 1.0);
  EXPECT_DOUBLE_EQ(f.evaluate({2.0}), 12.0);
}

TEST(LinExpr, VarMinusVar) {
  const Var x{0}, y{1};
  LinExpr e = x - y;
  EXPECT_DOUBLE_EQ(e.evaluate({7.0, 3.0}), 4.0);
}

TEST(LinExpr, EvaluateOutOfRangeThrows) {
  LinExpr e(Var{5});
  EXPECT_THROW(e.evaluate({1.0, 2.0}), support::PreconditionError);
}

}  // namespace
}  // namespace letdma::milp
