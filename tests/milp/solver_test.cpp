#include "letdma/milp/solver.hpp"

#include <gtest/gtest.h>

#include "letdma/milp/model.hpp"

namespace letdma::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(MilpSolver, PureLpPassesThrough) {
  Model m;
  const Var x = m.add_continuous(0, 4, "x");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  MilpSolver solver(m);
  const MilpResult r = solver.solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(MilpSolver, SmallKnapsack) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binaries.
  // Best: a + c = 17 (w=5); b + c = 20 (w=6) -> optimum 20.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_constraint(3.0 * a + 4.0 * b + 2.0 * c, Sense::kLe, 6.0, "w");
  m.set_objective(10.0 * a + 13.0 * b + 7.0 * c, ObjSense::kMaximize);
  MilpSolver solver(m);
  const MilpResult r = solver.solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 20.0, kTol);
  EXPECT_NEAR(r.x[1], 1.0, kTol);
  EXPECT_NEAR(r.x[2], 1.0, kTol);
}

TEST(MilpSolver, IntegerRoundingMatters) {
  // max x s.t. 2x <= 7, x integer -> 3 (LP gives 3.5).
  Model m;
  const Var x = m.add_integer(0, 100, "x");
  m.add_constraint(2.0 * x, Sense::kLe, 7.0, "c");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
}

TEST(MilpSolver, InfeasibleIntegerProgram) {
  // 0.4 <= x <= 0.6 with x integer has no solution.
  Model m;
  const Var x = m.add_integer(0, 1, "x");
  m.add_constraint(LinExpr(x), Sense::kGe, 0.4, "lo");
  m.add_constraint(LinExpr(x), Sense::kLe, 0.6, "hi");
  const MilpResult r = MilpSolver(m).solve();
  EXPECT_EQ(r.status, MilpStatus::kInfeasible);
  EXPECT_FALSE(r.has_solution());
}

TEST(MilpSolver, EqualityOnSumOfBinaries) {
  // exactly two of four binaries, minimize weighted sum.
  Model m;
  std::vector<Var> b;
  LinExpr sum;
  LinExpr obj;
  const double w[] = {5, 1, 3, 2};
  for (int i = 0; i < 4; ++i) {
    b.push_back(m.add_binary("b" + std::to_string(i)));
    sum += LinExpr(b.back());
    obj += w[i] * b.back();
  }
  m.add_constraint(sum, Sense::kEq, 2.0, "pick2");
  m.set_objective(obj, ObjSense::kMinimize);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);  // picks weights 1 and 2
  EXPECT_NEAR(r.x[1] + r.x[3], 2.0, kTol);
}

TEST(MilpSolver, MixedIntegerContinuous) {
  // min y s.t. y >= x - 2.5, y >= 2.5 - x, x integer in [0,5]:
  // best integer x is 2 or 3 -> y = 0.5.
  Model m;
  const Var x = m.add_integer(0, 5, "x");
  const Var y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(y) - LinExpr(x), Sense::kGe, -2.5, "a");
  m.add_constraint(LinExpr(y) + LinExpr(x), Sense::kGe, 2.5, "b");
  m.set_objective(LinExpr(y), ObjSense::kMinimize);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.5, kTol);
}

TEST(MilpSolver, WarmStartAccepted) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kLe, 1.0, "c");
  m.set_objective(3.0 * a + 2.0 * b, ObjSense::kMaximize);
  MilpSolver solver(m);
  EXPECT_TRUE(solver.set_warm_start({0.0, 1.0}));
  const MilpResult r = solver.solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);  // improved past the warm start
}

TEST(MilpSolver, InfeasibleWarmStartRejected) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kLe, 1.0, "c");
  MilpSolver solver(m);
  EXPECT_FALSE(solver.set_warm_start({1.0, 1.0}));
  EXPECT_FALSE(solver.set_warm_start({1.0}));  // wrong arity
}

TEST(MilpSolver, LazyConstraintsSeparated) {
  // max a + b + c with the pairwise-conflict rows supplied lazily:
  // at most one of {a,b}, {b,c}, {a,c} -> optimum 1.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.set_objective(LinExpr(a) + LinExpr(b) + LinExpr(c), ObjSense::kMaximize);
  MilpSolver solver(m);
  int calls = 0;
  solver.set_lazy_callback([&](const std::vector<double>& x) {
    ++calls;
    std::vector<LazyRow> rows;
    auto conflict = [&](Var u, Var v, const char* name) {
      if (x[static_cast<std::size_t>(u.index)] +
              x[static_cast<std::size_t>(v.index)] >
          1.0 + 1e-6) {
        rows.push_back({LinExpr(u) + LinExpr(v), Sense::kLe, 1.0, name});
      }
    };
    conflict(a, b, "ab");
    conflict(b, c, "bc");
    conflict(a, c, "ac");
    return rows;
  });
  const MilpResult r = solver.solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
  EXPECT_GE(calls, 2);  // at least one separation round plus the final check
  EXPECT_GE(r.stats.lazy_rows_added, 1);
}

TEST(MilpSolver, WarmStartCheckedAgainstLazyConstraints) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.set_objective(LinExpr(a) + LinExpr(b), ObjSense::kMaximize);
  MilpSolver solver(m);
  solver.set_lazy_callback([&](const std::vector<double>& x) {
    std::vector<LazyRow> rows;
    if (x[0] + x[1] > 1.0 + 1e-6) {
      rows.push_back({LinExpr(a) + LinExpr(b), Sense::kLe, 1.0, "ab"});
    }
    return rows;
  });
  EXPECT_FALSE(solver.set_warm_start({1.0, 1.0}));
  EXPECT_TRUE(solver.set_warm_start({1.0, 0.0}));
}

TEST(MilpSolver, NodeLimitReturnsIncumbentAsFeasible) {
  // A knapsack too big to finish in one node, with a warm start so an
  // incumbent exists when the limit hits.
  Model m;
  std::vector<Var> xs;
  LinExpr w, p;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(m.add_binary("x" + std::to_string(i)));
    w += (1.0 + (i % 7)) * xs.back();
    p += (2.0 + (i % 5)) * xs.back();
  }
  m.add_constraint(w, Sense::kLe, 20.0, "cap");
  m.set_objective(p, ObjSense::kMaximize);
  MilpOptions opt;
  opt.node_limit = 1;
  MilpSolver solver(m, opt);
  std::vector<double> zero(30, 0.0);
  ASSERT_TRUE(solver.set_warm_start(zero));
  const MilpResult r = solver.solve();
  EXPECT_TRUE(r.status == MilpStatus::kFeasible ||
              r.status == MilpStatus::kOptimal);
  EXPECT_TRUE(r.has_solution());
  EXPECT_GE(r.best_bound, r.objective - kTol);  // bound dominates incumbent
}

TEST(MilpSolver, GapIsZeroWhenOptimal) {
  Model m;
  const Var x = m.add_integer(0, 3, "x");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.gap(), 0.0, kTol);
}

TEST(MilpSolver, FeasibilityProblemNoObjective) {
  // No objective: any integer point satisfying the rows is optimal.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEq, 1.0, "xor");
  const MilpResult r = MilpSolver(m).solve();
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_NEAR(r.x[0] + r.x[1], 1.0, kTol);
}

}  // namespace
}  // namespace letdma::milp
