// Parallel branch & bound: determinism contracts, thread-count-invariant
// optima, cooperative cancellation, and worker accounting.
//
// Naming note: the suites are pinned by CI — the TSan job runs
// `ctest -R 'Milp.*Parallel|Engine|Portfolio'`, so every suite here must
// keep "Milp" before "Parallel" in its name.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "letdma/milp/model.hpp"
#include "letdma/milp/solver.hpp"
#include "letdma/support/rng.hpp"

namespace letdma::milp {
namespace {

/// Strongly-correlated knapsack (profit = weight + 5, cap = half the total
/// weight): small models whose trees are deep enough that several workers
/// actually overlap.
Model hard_knapsack(int n, std::uint64_t seed) {
  support::Rng rng(seed);
  Model model;
  LinExpr weight, profit;
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double w = static_cast<double>(rng.uniform_int(1, 40));
    const Var x = model.add_binary("x" + std::to_string(i));
    weight += w * x;
    profit += (w + 5.0) * x;
    total += w;
  }
  model.add_constraint(weight, Sense::kLe, std::floor(total / 2.0), "cap");
  model.set_objective(profit, ObjSense::kMaximize);
  return model;
}

/// Random set-packing-ish binary instance (same family the property tests
/// brute-force): n binaries, k subset-capacity rows, maximize weights.
Model random_binary(std::uint64_t seed, int n, int k) {
  support::Rng rng(seed);
  Model model;
  std::vector<Var> vars;
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    vars.push_back(model.add_binary("x" + std::to_string(i)));
    obj += static_cast<double>(rng.uniform_int(1, 9)) * vars.back();
  }
  for (int r = 0; r < k; ++r) {
    LinExpr row;
    int members = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        row += static_cast<double>(rng.uniform_int(1, 4)) * vars[i];
        ++members;
      }
    }
    if (members == 0) continue;
    model.add_constraint(row, Sense::kLe,
                         static_cast<double>(rng.uniform_int(2, 8)),
                         "r" + std::to_string(r));
  }
  model.set_objective(obj, ObjSense::kMaximize);
  return model;
}

/// Exact (bit-level) equality for doubles: determinism means *identical*,
/// not merely close.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

MilpResult solve_fresh(std::uint64_t seed, int n, const MilpOptions& opt) {
  Model model = hard_knapsack(n, seed);
  MilpSolver solver(model, opt);
  return solver.solve();
}

void expect_identical(const MilpResult& a, const MilpResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.status, b.status) << what;
  EXPECT_TRUE(same_bits(a.objective, b.objective))
      << what << ": objective " << a.objective << " vs " << b.objective;
  EXPECT_TRUE(same_bits(a.best_bound, b.best_bound))
      << what << ": bound " << a.best_bound << " vs " << b.best_bound;
  ASSERT_EQ(a.x.size(), b.x.size()) << what;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    EXPECT_TRUE(same_bits(a.x[i], b.x[i])) << what << ": x[" << i << "]";
  }
  EXPECT_EQ(a.stats.nodes_explored, b.stats.nodes_explored) << what;
  EXPECT_EQ(a.stats.lp_iterations, b.stats.lp_iterations) << what;
  ASSERT_EQ(a.stats.incumbents.size(), b.stats.incumbents.size()) << what;
  for (std::size_t i = 0; i < a.stats.incumbents.size(); ++i) {
    EXPECT_TRUE(same_bits(a.stats.incumbents[i].objective,
                          b.stats.incumbents[i].objective))
        << what << ": incumbent " << i;
    EXPECT_EQ(a.stats.incumbents[i].nodes, b.stats.incumbents[i].nodes)
        << what << ": incumbent " << i;
  }
}

// threads=1 must stay the classic sequential loop: repeated solves walk
// the exact same tree and report bit-identical everything.
TEST(MilpParallel, SequentialPathBitIdenticalAcrossRuns) {
  MilpOptions opt;
  opt.threads = 1;
  const MilpResult first = solve_fresh(11, 24, opt);
  ASSERT_EQ(first.status, MilpStatus::kOptimal);
  EXPECT_EQ(first.stats.threads_used, 1);
  ASSERT_EQ(first.stats.per_worker.size(), 1u);
  EXPECT_EQ(first.stats.per_worker[0].nodes_explored,
            first.stats.nodes_explored);
  for (int run = 0; run < 2; ++run) {
    expect_identical(first, solve_fresh(11, 24, opt),
                     "run " + std::to_string(run));
  }
}

// Deterministic mode: the whole point is that the thread count changes the
// wall clock, never the search. Everything except timing must match.
TEST(MilpParallel, DeterministicModeThreadCountInvariant) {
  MilpOptions base;
  base.deterministic = true;
  base.threads = 1;
  const MilpResult one = solve_fresh(23, 24, base);
  ASSERT_EQ(one.status, MilpStatus::kOptimal);
  for (const int threads : {2, 4}) {
    MilpOptions opt = base;
    opt.threads = threads;
    const MilpResult r = solve_fresh(23, 24, opt);
    EXPECT_EQ(r.stats.threads_used, threads);
    expect_identical(one, r, std::to_string(threads) + " threads");
  }
}

// Deterministic mode is also self-consistent run to run at a fixed thread
// count (no hidden timing dependence in the epoch commit order).
TEST(MilpParallel, DeterministicModeRepeatable) {
  MilpOptions opt;
  opt.deterministic = true;
  opt.threads = 4;
  expect_identical(solve_fresh(5, 22, opt), solve_fresh(5, 22, opt),
                   "repeat");
}

// The racy (default) parallel mode may explore a different tree per run,
// but the *answer* is the answer: same optimum as sequential on a sweep of
// generated instances, and the reported point is feasible.
TEST(MilpParallel, SameOptimumAnyThreadCount) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Model seq_model = random_binary(seed * 7919u + 13u, 12, 4);
    MilpOptions seq_opt;
    seq_opt.threads = 1;
    const MilpResult seq = MilpSolver(seq_model, seq_opt).solve();
    ASSERT_EQ(seq.status, MilpStatus::kOptimal) << "seed " << seed;

    for (const int threads : {2, 4}) {
      Model model = random_binary(seed * 7919u + 13u, 12, 4);
      MilpOptions opt;
      opt.threads = threads;
      const MilpResult par = MilpSolver(model, opt).solve();
      ASSERT_EQ(par.status, MilpStatus::kOptimal)
          << "seed " << seed << " threads " << threads;
      EXPECT_NEAR(par.objective, seq.objective, 1e-6)
          << "seed " << seed << " threads " << threads;
      EXPECT_TRUE(model.is_feasible(par.x)) << "seed " << seed;
    }
  }
}

// Cooperative cancellation mid-solve: raise the stop token from the
// incumbent callback (so an incumbent provably exists) and require the
// solve to come back promptly with that incumbent, workers joined, and the
// cancellation recorded.
TEST(MilpParallel, CancellationReturnsBestIncumbent) {
  Model model = hard_knapsack(42, 40);
  std::atomic<bool> stop{false};
  MilpOptions opt;
  opt.threads = 4;
  opt.time_limit_sec = 300.0;  // the stop token, not the clock, ends this
  opt.stop = &stop;
  std::atomic<int> incumbents{0};
  opt.on_incumbent = [&](const std::vector<double>&, double) {
    ++incumbents;
    stop.store(true);
  };
  MilpSolver solver(model, opt);
  const MilpResult r = solver.solve();  // returning == all workers joined
  EXPECT_GE(incumbents.load(), 1);
  EXPECT_TRUE(r.stats.cancelled);
  ASSERT_EQ(r.status, MilpStatus::kFeasible);
  ASSERT_TRUE(r.has_solution());
  EXPECT_TRUE(model.is_feasible(r.x));
  EXPECT_NEAR(r.objective, model.objective_value(r.x), 1e-9);
  EXPECT_LT(r.stats.wall_sec, 60.0);
}

// Worker accounting: one WorkerStats per spawned worker, and their node
// counts add up to the merged total for a run-to-completion solve.
TEST(MilpParallel, WorkerStatsSumToTotals) {
  MilpOptions opt;
  opt.threads = 4;
  const MilpResult r = solve_fresh(9, 26, opt);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_EQ(r.stats.threads_used, 4);
  ASSERT_EQ(r.stats.per_worker.size(), 4u);
  long nodes = 0, pruned = 0, lp_iters = 0;
  int found = 0;
  for (std::size_t w = 0; w < r.stats.per_worker.size(); ++w) {
    EXPECT_EQ(r.stats.per_worker[w].worker, static_cast<int>(w));
    nodes += r.stats.per_worker[w].nodes_explored;
    pruned += r.stats.per_worker[w].nodes_pruned;
    lp_iters += r.stats.per_worker[w].lp_iterations;
    found += r.stats.per_worker[w].incumbents_found;
  }
  EXPECT_EQ(nodes, r.stats.nodes_explored);
  EXPECT_EQ(pruned, r.stats.nodes_pruned);
  EXPECT_EQ(lp_iters, r.stats.lp_iterations);
  EXPECT_EQ(found, r.stats.incumbent_improvements());
}

// threads=0 resolves to hardware_concurrency and must report what it used.
TEST(MilpParallel, DefaultThreadsResolved) {
  MilpOptions opt;
  opt.threads = 0;
  const MilpResult r = solve_fresh(3, 18, opt);
  ASSERT_EQ(r.status, MilpStatus::kOptimal);
  EXPECT_GE(r.stats.threads_used, 1);
  EXPECT_EQ(r.stats.per_worker.size(),
            static_cast<std::size_t>(r.stats.threads_used));
}

}  // namespace
}  // namespace letdma::milp
