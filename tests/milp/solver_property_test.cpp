// Property-style randomized checks of the MILP stack: every solution the
// solver reports must satisfy Model::is_feasible, and on small instances the
// reported optimum must match brute-force enumeration over the binaries.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "letdma/milp/model.hpp"
#include "letdma/milp/solver.hpp"
#include "letdma/support/rng.hpp"

namespace letdma::milp {
namespace {

struct RandomBinaryInstance {
  Model model;
  std::vector<Var> vars;
  int n = 0;
};

/// Builds a random set-packing-ish instance: n binaries, k rows of the form
/// sum(subset) <= cap, objective max sum(w_i x_i).
RandomBinaryInstance make_instance(support::Rng& rng, int n, int k) {
  RandomBinaryInstance inst;
  inst.n = n;
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    inst.vars.push_back(inst.model.add_binary("x" + std::to_string(i)));
    obj += static_cast<double>(rng.uniform_int(1, 9)) * inst.vars.back();
  }
  for (int r = 0; r < k; ++r) {
    LinExpr row;
    int members = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.5)) {
        row += static_cast<double>(rng.uniform_int(1, 4)) * inst.vars[i];
        ++members;
      }
    }
    if (members == 0) continue;
    inst.model.add_constraint(row, Sense::kLe,
                              static_cast<double>(rng.uniform_int(2, 8)),
                              "r" + std::to_string(r));
  }
  inst.model.set_objective(obj, ObjSense::kMaximize);
  return inst;
}

/// Exhaustive optimum over all 2^n binary assignments.
double brute_force_max(const Model& m, int n) {
  double best = -1e100;
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int mask = 0; mask < (1 << n); ++mask) {
    for (int i = 0; i < n; ++i) x[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    if (m.is_feasible(x)) best = std::max(best, m.objective_value(x));
  }
  return best;
}

class RandomMilpMatchesBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(RandomMilpMatchesBruteForce, OptimumAgrees) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const int n = 3 + GetParam() % 8;  // 3..10 binaries
  const int k = 1 + GetParam() % 5;
  RandomBinaryInstance inst = make_instance(rng, n, k);
  const double expect = brute_force_max(inst.model, n);
  const MilpResult r = MilpSolver(inst.model).solve();
  if (expect < -1e99) {
    // All-zero is always feasible for <= rows with non-negative weights,
    // so this should not happen — but guard against test-model drift.
    EXPECT_EQ(r.status, MilpStatus::kInfeasible);
    return;
  }
  ASSERT_EQ(r.status, MilpStatus::kOptimal) << inst.model.to_lp_string();
  EXPECT_NEAR(r.objective, expect, 1e-6);
  EXPECT_TRUE(inst.model.is_feasible(r.x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMilpMatchesBruteForce,
                         ::testing::Range(0, 40));

class RandomLpSolutionFeasible : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpSolutionFeasible, LpRelaxationRespectsRows) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 7u);
  const int n = 4 + GetParam() % 10;
  Model m;
  std::vector<Var> vars;
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    const double lo = static_cast<double>(rng.uniform_int(-5, 0));
    const double hi = lo + static_cast<double>(rng.uniform_int(1, 10));
    vars.push_back(m.add_continuous(lo, hi, "x" + std::to_string(i)));
    obj += (rng.uniform() * 4.0 - 2.0) * vars.back();
  }
  for (int r = 0; r < n / 2 + 1; ++r) {
    LinExpr row;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.6)) row += (rng.uniform() * 6.0 - 3.0) * vars[i];
    }
    const double rhs = rng.uniform() * 20.0 - 5.0;
    const Sense sense = rng.chance(0.5) ? Sense::kLe : Sense::kGe;
    m.add_constraint(row, sense, rhs, "r" + std::to_string(r));
  }
  m.set_objective(obj, ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  if (r.status != LpStatus::kOptimal) {
    // Infeasibility is legitimate for random rows; nothing else is
    // acceptable because all variables are boxed (no unboundedness).
    EXPECT_EQ(r.status, LpStatus::kInfeasible);
    return;
  }
  EXPECT_TRUE(m.is_feasible(r.x, 1e-5)) << m.to_lp_string();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpSolutionFeasible,
                         ::testing::Range(0, 40));

/// Mixed-sense binary instances (<=, >=, ==) vs brute force: exercises the
/// artificial-variable phase-1 path, which pure <= instances never touch.
class MixedSenseMilpMatchesBruteForce : public ::testing::TestWithParam<int> {
};

TEST_P(MixedSenseMilpMatchesBruteForce, OptimumAgrees) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 2246822519u + 3u);
  const int n = 3 + GetParam() % 7;  // 3..9 binaries
  Model m;
  std::vector<Var> vars;
  LinExpr obj;
  for (int i = 0; i < n; ++i) {
    vars.push_back(m.add_binary("x" + std::to_string(i)));
    obj += static_cast<double>(rng.uniform_int(-5, 9)) * vars.back();
  }
  const int k = 1 + GetParam() % 4;
  for (int r = 0; r < k; ++r) {
    LinExpr row;
    int members = 0;
    for (int i = 0; i < n; ++i) {
      if (rng.chance(0.6)) {
        row += static_cast<double>(rng.uniform_int(-2, 3)) * vars[i];
        ++members;
      }
    }
    if (members == 0) continue;
    const int pick = static_cast<int>(rng.uniform_int(0, 2));
    const Sense sense = pick == 0   ? Sense::kLe
                        : pick == 1 ? Sense::kGe
                                    : Sense::kEq;
    m.add_constraint(row, sense,
                     static_cast<double>(rng.uniform_int(-1, 4)),
                     "r" + std::to_string(r));
  }
  m.set_objective(obj, ObjSense::kMaximize);

  const double expect = brute_force_max(m, n);
  const MilpResult r = MilpSolver(m).solve();
  if (expect < -1e99) {
    EXPECT_EQ(r.status, MilpStatus::kInfeasible) << m.to_lp_string();
    return;
  }
  ASSERT_EQ(r.status, MilpStatus::kOptimal) << m.to_lp_string();
  EXPECT_NEAR(r.objective, expect, 1e-6) << m.to_lp_string();
  EXPECT_TRUE(m.is_feasible(r.x));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSenseMilpMatchesBruteForce,
                         ::testing::Range(0, 60));

}  // namespace
}  // namespace letdma::milp
