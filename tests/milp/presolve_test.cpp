#include "letdma/milp/presolve.hpp"

#include <gtest/gtest.h>

#include "letdma/milp/solver.hpp"
#include "letdma/support/rng.hpp"

namespace letdma::milp {
namespace {

TEST(Presolve, TightensFromSingleRow) {
  // 2x <= 7 with x integer in [0, 100]: presolve fixes ub to 3.
  Model m;
  const Var x = m.add_integer(0, 100, "x");
  m.add_constraint(2.0 * x, Sense::kLe, 7.0, "c");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(r.ub[0], 3.0);
  EXPECT_GE(r.tightenings, 1);
}

TEST(Presolve, EqualityFixesBinaries) {
  // a + b = 2 with binaries: both fixed to 1.
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kEq, 2.0, "sum");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(r.lb[0], 1.0);
  EXPECT_DOUBLE_EQ(r.lb[1], 1.0);
}

TEST(Presolve, GeRowRaisesLowerBound) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  const Var y = m.add_continuous(0, 2, "y");
  m.add_constraint(LinExpr(x) + LinExpr(y), Sense::kGe, 7.0, "demand");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(r.lb[0], 5.0);  // x >= 7 - max(y)
}

TEST(Presolve, DetectsInfeasibleRow) {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  m.add_constraint(LinExpr(a) + LinExpr(b), Sense::kGe, 3.0, "impossible");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_TRUE(r.infeasible);
}

TEST(Presolve, PropagatesAcrossRows) {
  // x = 4 forces y <= 2 through x + 2y <= 8, then z >= 3 through y + z >= 5.
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  const Var y = m.add_continuous(0, 10, "y");
  const Var z = m.add_continuous(0, 10, "z");
  m.add_constraint(LinExpr(x), Sense::kEq, 4.0, "fix");
  m.add_constraint(LinExpr(x) + 2.0 * y, Sense::kLe, 8.0, "c1");
  m.add_constraint(LinExpr(y) + LinExpr(z), Sense::kGe, 5.0, "c2");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(r.ub[1], 2.0);
  EXPECT_DOUBLE_EQ(r.lb[2], 3.0);
  EXPECT_GE(r.rounds, 1);
}

TEST(Presolve, NegativeCoefficients) {
  // -x + y <= -3, y in [0,10], x in [0,5]: x >= y + 3 >= 3.
  Model m;
  const Var x = m.add_continuous(0, 5, "x");
  const Var y = m.add_continuous(0, 10, "y");
  m.add_constraint(-1.0 * x + 1.0 * y, Sense::kLe, -3.0, "c");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_FALSE(r.infeasible);
  EXPECT_DOUBLE_EQ(r.lb[0], 3.0);
  EXPECT_DOUBLE_EQ(r.ub[1], 2.0);  // y <= x - 3 <= 2
}

TEST(Presolve, NoConstraintsNoChanges) {
  Model m;
  m.add_continuous(0, 1, "x");
  const PresolveResult r = presolve_bounds(m);
  EXPECT_EQ(r.tightenings, 0);
  EXPECT_FALSE(r.infeasible);
}

TEST(Presolve, SolverIntegrationMatchesWithAndWithout) {
  support::Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Model with, without;
    for (Model* m : {&with, &without}) {
      std::vector<Var> vars;
      LinExpr obj, row;
      support::Rng local(100 + trial);  // identical instances
      for (int i = 0; i < 8; ++i) {
        vars.push_back(m->add_binary("x" + std::to_string(i)));
        obj += static_cast<double>(local.uniform_int(1, 9)) * vars.back();
        row += static_cast<double>(local.uniform_int(1, 4)) * vars.back();
      }
      m->add_constraint(row, Sense::kLe, 9.0, "cap");
      m->set_objective(obj, ObjSense::kMaximize);
    }
    MilpOptions on, off;
    on.presolve = true;
    off.presolve = false;
    const MilpResult a = MilpSolver(with, on).solve();
    const MilpResult b = MilpSolver(without, off).solve();
    ASSERT_EQ(a.status, MilpStatus::kOptimal);
    ASSERT_EQ(b.status, MilpStatus::kOptimal);
    EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
  }
  (void)rng;
}

TEST(Presolve, SolverShortCircuitsInfeasible) {
  Model m;
  const Var a = m.add_binary("a");
  m.add_constraint(LinExpr(a), Sense::kGe, 2.0, "impossible");
  const MilpResult r = MilpSolver(m).solve();
  EXPECT_EQ(r.status, MilpStatus::kInfeasible);
  EXPECT_EQ(r.stats.nodes_explored, 0);  // closed before the tree
}

}  // namespace
}  // namespace letdma::milp
