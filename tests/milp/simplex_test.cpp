#include "letdma/milp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "letdma/milp/model.hpp"

namespace letdma::milp {
namespace {

constexpr double kTol = 1e-6;

TEST(Simplex, TrivialMaximization) {
  // max x + y  s.t. x + y <= 4, x <= 3, y <= 2  ->  obj 4.
  Model m;
  const Var x = m.add_continuous(0, 3, "x");
  const Var y = m.add_continuous(0, 2, "y");
  m.add_constraint(x + y, Sense::kLe, 4.0, "cap");
  m.set_objective(x + y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(Simplex, ClassicTwoVariableLp) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 (Dantzig's example).
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  const Var y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x), Sense::kLe, 4.0, "c1");
  m.add_constraint(2.0 * y, Sense::kLe, 12.0, "c2");
  m.add_constraint(3.0 * x + 2.0 * y, Sense::kLe, 18.0, "c3");
  m.set_objective(3.0 * x + 5.0 * y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 36.0, kTol);
  EXPECT_NEAR(r.x[0], 2.0, kTol);
  EXPECT_NEAR(r.x[1], 6.0, kTol);
}

TEST(Simplex, MinimizationWithGeRows) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  ->  x=7, y=3, obj 23.
  Model m;
  const Var x = m.add_continuous(2, kInfinity, "x");
  const Var y = m.add_continuous(3, kInfinity, "y");
  m.add_constraint(x + y, Sense::kGe, 10.0, "demand");
  m.set_objective(2.0 * x + 3.0 * y, ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 23.0, kTol);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 6, x,y >= 0 -> y=3, x=0, obj 3.
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  const Var y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(x + 2.0 * y, Sense::kEq, 6.0, "bal");
  m.set_objective(x + y, ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, kTol);
  EXPECT_NEAR(r.x[1], 3.0, kTol);
}

TEST(Simplex, DetectsInfeasibility) {
  Model m;
  const Var x = m.add_continuous(0, 1, "x");
  m.add_constraint(LinExpr(x), Sense::kGe, 2.0, "impossible");
  const LpResult r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsConflictingEqualities) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  m.add_constraint(LinExpr(x), Sense::kEq, 2.0, "a");
  m.add_constraint(LinExpr(x), Sense::kEq, 3.0, "b");
  const LpResult r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
}

TEST(Simplex, FreeVariable) {
  // min x s.t. x >= -5 via constraint (x itself is free).
  Model m;
  const Var x = m.add_continuous(-kInfinity, kInfinity, "x");
  m.add_constraint(LinExpr(x), Sense::kGe, -5.0, "lb");
  m.set_objective(LinExpr(x), ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, kTol);
}

TEST(Simplex, NegativeRhsRows) {
  // min -x - y s.t. -x - y >= -4  (i.e. x + y <= 4), 0 <= x,y <= 3.
  Model m;
  const Var x = m.add_continuous(0, 3, "x");
  const Var y = m.add_continuous(0, 3, "y");
  m.add_constraint(-1.0 * x - 1.0 * y, Sense::kGe, -4.0, "neg");
  m.set_objective(-1.0 * x - 1.0 * y, ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, kTol);
}

TEST(Simplex, RedundantRowsHandled) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  m.add_constraint(LinExpr(x), Sense::kEq, 4.0, "a");
  m.add_constraint(2.0 * x, Sense::kEq, 8.0, "dup");
  m.set_objective(LinExpr(x), ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 4.0, kTol);
}

TEST(Simplex, NoConstraintsJustBounds) {
  Model m;
  const Var x = m.add_continuous(1.5, 9.0, "x");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 9.0, kTol);
}

TEST(Simplex, BoundOverridesRespected) {
  Model m;
  const Var x = m.add_continuous(0, 10, "x");
  m.set_objective(LinExpr(x), ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve_with_bounds({2.0}, {5.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, kTol);
}

TEST(Simplex, InvertedOverrideBoundsAreInfeasible) {
  Model m;
  m.add_continuous(0, 10, "x");
  const LpResult r = SimplexSolver(m).solve_with_bounds({5.0}, {2.0});
  EXPECT_EQ(r.status, LpStatus::kInfeasible);
}

TEST(Simplex, DegenerateLpTerminates) {
  // Many redundant constraints through the same vertex.
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  const Var y = m.add_continuous(0, kInfinity, "y");
  for (int i = 1; i <= 8; ++i) {
    m.add_constraint(static_cast<double>(i) * x + static_cast<double>(i) * y,
                     Sense::kLe, 0.0, "deg" + std::to_string(i));
  }
  m.set_objective(x + y, ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, kTol);
}

TEST(Simplex, KleeMintyCube) {
  // The classic worst case for Dantzig pricing: max sum 2^(n-j) x_j over
  // the Klee-Minty cube. Optimum is 5^n at x = (0, ..., 0, 5^n).
  const int n = 6;
  Model m;
  std::vector<Var> x;
  for (int j = 0; j < n; ++j) {
    x.push_back(m.add_continuous(0, kInfinity, "x" + std::to_string(j)));
  }
  for (int i = 0; i < n; ++i) {
    LinExpr row;
    for (int j = 0; j < i; ++j) {
      row += 2.0 * std::pow(5.0, i - j) * x[static_cast<std::size_t>(j)];
    }
    row += LinExpr(x[static_cast<std::size_t>(i)]);
    m.add_constraint(row, Sense::kLe, std::pow(5.0, i + 1),
                     "km" + std::to_string(i));
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) {
    obj += std::pow(2.0, n - 1 - j) * x[static_cast<std::size_t>(j)];
  }
  m.set_objective(obj, ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, std::pow(5.0, n), 1e-4);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(n - 1)], std::pow(5.0, n), 1e-4);
}

TEST(Simplex, ManyBoundFlips) {
  // Boxed variables with alternating objective signs exercise the
  // bound-flip (no-pivot) path.
  Model m;
  LinExpr obj;
  for (int j = 0; j < 40; ++j) {
    const Var v = m.add_continuous(-1.0, 1.0, "x" + std::to_string(j));
    obj += (j % 2 == 0 ? 1.0 : -1.0) * v;
  }
  m.set_objective(obj, ObjSense::kMaximize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 40.0, 1e-6);
}

TEST(Simplex, TransportationProblem) {
  // 2 suppliers (cap 20, 30) x 3 consumers (demand 10, 25, 15);
  // costs: s1: 2,4,5 ; s2: 3,1,7. Optimal cost = 2*10+4*0+5*10 ... verify
  // against a hand-computed optimum of 125.
  Model m;
  std::vector<Var> ship;
  const double cost[2][3] = {{2, 4, 5}, {3, 1, 7}};
  const double cap[2] = {20, 30};
  const double dem[3] = {10, 25, 15};
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < 3; ++c) {
      ship.push_back(m.add_continuous(
          0, kInfinity, "x" + std::to_string(s) + std::to_string(c)));
    }
  }
  for (int s = 0; s < 2; ++s) {
    LinExpr e;
    for (int c = 0; c < 3; ++c) e += LinExpr(ship[s * 3 + c]);
    m.add_constraint(e, Sense::kLe, cap[s], "cap" + std::to_string(s));
  }
  for (int c = 0; c < 3; ++c) {
    LinExpr e;
    for (int s = 0; s < 2; ++s) e += LinExpr(ship[s * 3 + c]);
    m.add_constraint(e, Sense::kGe, dem[c], "dem" + std::to_string(c));
  }
  LinExpr obj;
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < 3; ++c) obj += cost[s][c] * ship[s * 3 + c];
  }
  m.set_objective(obj, ObjSense::kMinimize);
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  // Optimum: s1->c1 10 (20), s1->c3 10 (50), s2->c2 25 (25), s2->c3 5 (35)
  // = 130? Check alternatives: s1: c1 10, c3 15 => 20+75=95; s2: c2 25 =>25
  // total 120, uses s1 cap 25 > 20. Infeasible. LP finds the true optimum;
  // assert bounds instead of an exact hand value, plus feasibility.
  EXPECT_GT(r.objective, 0.0);
  double total = 0;
  for (double v : r.x) {
    EXPECT_GE(v, -kTol);
    total += v;
  }
  EXPECT_NEAR(total, 50.0, 1e-5);  // all demand shipped
  EXPECT_NEAR(r.objective, 125.0, 1e-5);
}

}  // namespace
}  // namespace letdma::milp
