// Anti-cycling regression: degenerate LPs must terminate (bounded pivots,
// Bland fallback) instead of cycling under Dantzig pricing, and the solver
// must report degeneracy through LpResult and the obs counters.
#include <gtest/gtest.h>

#include "letdma/milp/model.hpp"
#include "letdma/milp/simplex.hpp"
#include "letdma/obs/obs.hpp"

namespace letdma::milp {
namespace {

constexpr double kTol = 1e-6;

/// Beale's classic cycling example: Dantzig pricing with naive tie-breaks
/// cycles forever on this LP; any anti-cycling safeguard must still reach
/// the optimum -0.05 at x = (0.04, 0, 1, 0).
Model beale_lp() {
  Model m;
  const Var x1 = m.add_continuous(0, kInfinity, "x1");
  const Var x2 = m.add_continuous(0, kInfinity, "x2");
  const Var x3 = m.add_continuous(0, kInfinity, "x3");
  const Var x4 = m.add_continuous(0, kInfinity, "x4");
  m.add_constraint(0.25 * x1 - 60.0 * x2 - 0.04 * x3 + 9.0 * x4, Sense::kLe,
                   0.0, "r1");
  m.add_constraint(0.5 * x1 - 90.0 * x2 - 0.02 * x3 + 3.0 * x4, Sense::kLe,
                   0.0, "r2");
  m.add_constraint(LinExpr(x3), Sense::kLe, 1.0, "r3");
  m.set_objective(-0.75 * x1 + 150.0 * x2 - 0.02 * x3 + 6.0 * x4,
                  ObjSense::kMinimize);
  return m;
}

/// Primal-degenerate LP: the vertex reached after the first pivot has a
/// basic slack at zero, so the next pivot has step length zero.
Model degenerate_lp() {
  Model m;
  const Var x = m.add_continuous(0, kInfinity, "x");
  const Var y = m.add_continuous(0, kInfinity, "y");
  m.add_constraint(LinExpr(x), Sense::kLe, 1.0, "cx");
  m.add_constraint(LinExpr(y), Sense::kLe, 1.0, "cy");
  m.add_constraint(x + y, Sense::kLe, 1.0, "cap");
  m.set_objective(x + y, ObjSense::kMaximize);
  return m;
}

TEST(SimplexDegen, BealeCyclingLpReachesOptimum) {
  const Model m = beale_lp();
  const LpResult r = SimplexSolver(m).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, kTol);
  EXPECT_NEAR(r.x[0], 0.04, kTol);
  EXPECT_NEAR(r.x[1], 0.0, kTol);
  EXPECT_NEAR(r.x[2], 1.0, kTol);
  EXPECT_NEAR(r.x[3], 0.0, kTol);
}

TEST(SimplexDegen, BealeSolvesUnderTightStreakLimit) {
  // Even with the most aggressive fallback (any degenerate pivot engages
  // Bland's rule) the optimum is unchanged — the guard affects pivot
  // selection, never correctness.
  SimplexOptions opt;
  opt.degen_streak_limit = 0;
  const Model m = beale_lp();
  const LpResult r = SimplexSolver(m, opt).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, kTol);
}

TEST(SimplexDegen, DegeneratePivotsAreCountedAndBlandEngages) {
  obs::Registry& reg = obs::Registry::instance();
  const auto base_degen = reg.counter_value("milp.simplex.degenerate_pivots");
  const auto base_bland = reg.counter_value("milp.simplex.bland_activations");

  SimplexOptions opt;
  opt.degen_streak_limit = 0;  // first degenerate pivot engages Bland
  const Model m = degenerate_lp();
  const LpResult r = SimplexSolver(m, opt).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
  EXPECT_GT(r.degenerate_pivots, 0);
  EXPECT_TRUE(r.bland_used);

  EXPECT_GE(reg.counter_value("milp.simplex.degenerate_pivots"),
            base_degen + r.degenerate_pivots);
  EXPECT_GE(reg.counter_value("milp.simplex.bland_activations"),
            base_bland + 1);
}

TEST(SimplexDegen, GenerousStreakLimitStaysOnDantzig) {
  SimplexOptions opt;
  opt.degen_streak_limit = 1'000'000;
  const Model m = degenerate_lp();
  const LpResult r = SimplexSolver(m, opt).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.0, kTol);
  EXPECT_FALSE(r.bland_used);
}

TEST(SimplexDegen, PivotCountStaysBounded) {
  // The regression this file exists for: Beale's LP under a naive Dantzig
  // rule cycles forever. Whatever pricing path is taken, iterations must
  // stay far below the cap.
  SimplexOptions opt;
  opt.max_iterations = 10'000;
  const Model m = beale_lp();
  const LpResult r = SimplexSolver(m, opt).solve();
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_LT(r.iterations, 1'000);
}

}  // namespace
}  // namespace letdma::milp
